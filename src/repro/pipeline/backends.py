"""Planner-worker backends for the overlap pipeline.

A backend turns ``(iteration index, batch)`` into a :class:`PlanTicket`
whose :meth:`~PlanTicket.result` eventually yields ``(plan, start,
end)`` — the plan plus the wall-clock interval the planner actually
spent on it (``time.perf_counter`` stamps; on Linux the monotonic clock
is shared across processes, so process-worker stamps compose with the
parent's).  Three implementations:

* :class:`ThreadPlannerBackend` — planner workers on a thread pool in
  this process.  The planner releases the GIL inside numpy, so real
  overlap with (simulated) execution is achieved in practice; this is
  the default.  ``max_concurrent_plans`` bounds how many plans run at
  once: with many workers, pure-Python planner phases contend on the
  GIL and a plan's wall time can ~2x, so capping concurrency below the
  worker count trades queueing for per-plan latency.
* :class:`ProcessPlannerBackend` — planner workers in separate
  processes, the paper's "parallelized with more than 10 CPU cores"
  configuration.  The planner ships to each worker once (fork
  inheritance or the pool initializer), never per job, and finished
  plans return through a zero-copy shared-memory ring in the columnar
  wire format (:mod:`repro.core.planwire`), falling back to
  wire-bytes-over-pipe and plain pickle transparently.
* :class:`KVPlannerBackend` — planning through a
  :class:`~repro.core.pool.PlannerPool`: jobs fan out round-robin
  across (simulated) machines and plans return via the KV store,
  the paper's full §6.1 distribution path.  With ``per_device_fetch``
  the consumer side pulls per-device plan slices (skeleton + own
  instruction stream) instead of re-reading whole plans, and the wire
  bytes it would move accumulate in ``consumer_wire_bytes``.

All backends accept a per-job ``planner`` override on
:meth:`submit`/:meth:`resubmit` — the streaming pipeline pins a cluster
shape onto re-planned jobs this way — and ``resubmit`` is the
retry/respawn entry point for jobs whose worker raised or hung.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Optional, Tuple

from ..core.planwire import decode_plan, encode_plan
from ..obs.metrics import MetricsRegistry
from ..obs.trace import add_span as _add_span
from ..obs.trace import tracing_enabled as _tracing
from .shm import DEFAULT_SLOT_BYTES, PlanRing, ShmUnavailable

__all__ = [
    "PlanTicket",
    "CompletedTicket",
    "SharedPlanTicket",
    "ThreadPlannerBackend",
    "ProcessPlannerBackend",
    "KVPlannerBackend",
    "ServicePlannerBackend",
    "make_backend",
]


class PlanTicket:
    """Handle for one in-flight planning job."""

    def __init__(self, future: Future) -> None:
        self._future = future

    def ready(self) -> bool:
        return self._future.done()

    def result(self, timeout: Optional[float] = None) -> Tuple:
        """Block for ``(plan, plan_start, plan_end)``."""
        return self._future.result(timeout=timeout)

    def add_done_callback(self, fn: Callable[[Future], None]) -> None:
        """Run ``fn(future)`` when the job completes (or is cancelled)."""
        self._future.add_done_callback(fn)


class CompletedTicket(PlanTicket):
    """An already-available plan (cache hit): zero planning time."""

    def __init__(self, plan, stamp: float) -> None:
        self._payload = (plan, stamp, stamp)

    def ready(self) -> bool:
        return True

    def result(self, timeout: Optional[float] = None) -> Tuple:
        return self._payload

    def add_done_callback(self, fn) -> None:  # already done: nothing owed
        pass


class SharedPlanTicket(PlanTicket):
    """Joins a plan someone else is computing (an in-flight signature).

    Wraps a :class:`~repro.core.cache.PlanCache` reservation future that
    resolves to the bare plan; the worker interval belongs to the
    iteration that dispatched the job, so this ticket reports a
    zero-width interval at resolution time.
    """

    def __init__(self, future: Future) -> None:
        self._future = future

    def result(self, timeout: Optional[float] = None) -> Tuple:
        plan = self._future.result(timeout=timeout)
        now = time.perf_counter()
        return plan, now, now


def _timed_plan(planner, batch) -> Tuple:
    start = time.perf_counter()
    plan = planner.plan_batch(batch)
    return plan, start, time.perf_counter()


class ThreadPlannerBackend:
    """Planner workers on an in-process thread pool.

    ``max_concurrent_plans`` (optional) is a semaphore over the plan
    bodies: at most that many plans make progress at once even when
    more workers are available, bounding GIL contention between
    concurrent planner phases.  ``None`` leaves the historical
    behavior (every worker plans freely).
    """

    name = "thread"

    def __init__(
        self,
        planner,
        max_workers: int = 2,
        max_concurrent_plans: Optional[int] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("need at least one planner worker")
        if max_concurrent_plans is not None and max_concurrent_plans < 1:
            raise ValueError("max_concurrent_plans must be positive")
        self.planner = planner
        self.max_workers = max_workers
        self.max_concurrent_plans = max_concurrent_plans
        self._throttle = (
            threading.BoundedSemaphore(max_concurrent_plans)
            if max_concurrent_plans is not None
            else None
        )
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="dcp-plan"
        )

    def _job(self, planner, batch) -> Tuple:
        if self._throttle is None:
            return _timed_plan(planner, batch)
        with self._throttle:
            return _timed_plan(planner, batch)

    def submit(self, index: int, batch, planner=None) -> PlanTicket:
        job_planner = planner if planner is not None else self.planner
        return PlanTicket(self._pool.submit(self._job, job_planner, batch))

    def resubmit(self, index: int, batch, planner=None) -> PlanTicket:
        """Respawn a job whose previous worker raised or hung.

        Runs on a dedicated daemon thread rather than the pool: a hung
        worker cannot be killed, so it permanently occupies its pool
        thread (and its ``max_concurrent_plans`` slot) — a respawn
        queued behind it would hang exactly the same way.  The escape
        thread bypasses both, so recovery works even with every pool
        worker wedged; the throttle is intentionally not honored here
        (bounded-contention is a performance preference, recovery is
        correctness).
        """
        job_planner = planner if planner is not None else self.planner
        future: Future = Future()

        def run() -> None:
            if not future.set_running_or_notify_cancel():
                return
            try:
                future.set_result(_timed_plan(job_planner, batch))
            except BaseException as exc:
                future.set_exception(exc)

        threading.Thread(
            target=run, name="dcp-plan-respawn", daemon=True
        ).start()
        return PlanTicket(future)

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


#: Per-worker state installed by :func:`_plan_worker_init`: the planner
#: (shipped once per worker, never per job), the transport mode, and
#: the attached plan ring (``None`` outside shm transport).
_WORKER_STATE: dict = {}


def _plan_worker_init(planner, ring_spec, transport: str) -> None:
    _WORKER_STATE["planner"] = planner
    _WORKER_STATE["transport"] = transport
    ring = None
    if ring_spec is not None:
        try:
            ring = PlanRing.attach(ring_spec)
        except Exception:
            ring = None  # ring gone or unmappable: pipe fallback
    _WORKER_STATE["ring"] = ring


def _transport_plan(batch, slot, override=None) -> Tuple:
    """Worker-side job: plan, then move the plan by the cheapest path.

    Returns ``(kind, payload, start, end, encode_s, write_s, nbytes)``
    where ``kind`` is ``"shm"`` (payload = slot index, bytes already in
    the ring), ``"wire"`` (payload = columnar bytes over the result
    pipe), or ``"pickle"`` (payload = the plan object itself; the pipe
    pickles it).  ``start``/``end`` bracket pure planning time only, so
    plan intervals stay comparable across transports.
    """
    planner = override if override is not None else _WORKER_STATE["planner"]
    transport = _WORKER_STATE.get("transport", "pickle")
    start = time.perf_counter()
    plan = planner.plan_batch(batch)
    end = time.perf_counter()
    if transport == "pickle":
        return "pickle", plan, start, end, 0.0, 0.0, 0
    stamp = time.perf_counter()
    blob = encode_plan(plan).to_bytes()
    encode_s = time.perf_counter() - stamp
    ring = _WORKER_STATE.get("ring")
    if slot is not None and ring is not None:
        stamp = time.perf_counter()
        if ring.write(slot, blob):
            write_s = time.perf_counter() - stamp
            return "shm", slot, start, end, encode_s, write_s, len(blob)
    return "wire", blob, start, end, encode_s, 0.0, len(blob)


class ProcessPlannerBackend:
    """Planner workers in separate processes (no GIL sharing at all).

    The planner ships to each worker exactly once — inherited by
    ``fork`` or pickled through the pool initializer under
    ``forkserver``/``spawn`` — so a job carries only its batch (plus a
    slot index); :attr:`last_job_payload_bytes` tracks that and the
    regression tests pin it.  Finished plans come back per
    ``transport``:

    * ``"shm"`` (default) — columnar wire bytes deposited in a
      :class:`~repro.pipeline.shm.PlanRing` slot reserved by the parent
      at submit time; the parent decodes straight out of shared memory.
      Falls back per plan to ``"wire"`` when the ring is full or a plan
      outgrows its slot, and at construction when shm is unavailable.
    * ``"wire"`` — columnar bytes over the result pipe (one extra
      copy, no shared memory).
    * ``"pickle"`` — the historical object-graph round-trip.

    :attr:`transport_stats` accumulates per-plan payload bytes and
    encode/write/decode seconds — the transport-overhead numbers the
    ``--transport`` benchmark cell and its floor gate.  The numbers
    live in ``transport.*`` registry counters (:attr:`metrics`);
    :attr:`transport_stats` is a dict-shaped view over them.  With
    tracing enabled the encode/write/decode intervals also land on the
    Perfetto timeline: decode is measured in the parent, encode/write
    are synthesized from the worker-reported durations anchored at the
    plan-end stamp (``perf_counter`` is process-shared on Linux, which
    the transport's latency stamps already rely on).
    """

    name = "process"

    TRANSPORTS = ("shm", "wire", "pickle")

    def __init__(
        self,
        planner,
        max_workers: int = 2,
        transport: str = "shm",
        mp_start: str = "auto",
        ring_slots: Optional[int] = None,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError("need at least one planner worker")
        if transport not in self.TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; use one of "
                f"{self.TRANSPORTS}"
            )
        self.planner = planner
        self.max_workers = max_workers
        self.requested_transport = transport
        if mp_start == "auto":
            # ``fork`` keeps planners defined anywhere (tests, scripts)
            # workable and ships the planner by page sharing;
            # ``forkserver``/``spawn`` need an importable planner.
            methods = multiprocessing.get_all_start_methods()
            mp_start = "fork" if "fork" in methods else "spawn"
        self.mp_start = mp_start
        self._ring: Optional[PlanRing] = None
        if transport == "shm":
            try:
                self._ring = PlanRing.create(
                    slots=ring_slots or max(2 * max_workers + 2, 4),
                    slot_bytes=slot_bytes,
                )
            except ShmUnavailable:
                transport = "wire"
        self.transport = transport
        try:
            #: One-time cost of shipping the planner (what the old
            #: backend paid per job; ``fork`` does not even pay it once).
            self.planner_payload_bytes = len(pickle.dumps(planner))
        except Exception:
            self.planner_payload_bytes = 0
        #: Pickled size of the most recent job's arguments — the bytes
        #: that actually cross the pipe per job now that the planner
        #: does not.
        self.last_job_payload_bytes = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._transport_counters = {
            key: self.metrics.counter(f"transport.{key}")
            for key in (
                "plans",
                "shm_plans",
                "wire_plans",
                "pickle_plans",
                "payload_bytes",
                "encode_s",
                "write_s",
                "decode_s",
            )
        }
        ring_spec = self._ring.spec() if self._ring is not None else None
        self._pool = ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context(self.mp_start),
            initializer=_plan_worker_init,
            initargs=(planner, ring_spec, self.transport),
        )

    @property
    def transport_stats(self) -> dict:
        """Historical dict shape, served from the ``transport.*`` counters."""
        return {
            key: counter.value
            for key, counter in self._transport_counters.items()
        }

    def _account_submit(self, batch, slot, override) -> None:
        try:
            self.last_job_payload_bytes = len(
                pickle.dumps((batch, slot, override), protocol=4)
            )
        except Exception:
            self.last_job_payload_bytes = 0

    def _wrap(self, inner: Future, slot: Optional[int]) -> Future:
        """Decode the worker's transport result into ``(plan, t0, t1)``."""
        wrapper: Future = Future()

        def relay(done: Future) -> None:
            try:
                kind, payload, start, end, encode_s, write_s, nbytes = (
                    done.result()
                )
            except BaseException as exc:
                if slot is not None and self._ring is not None:
                    self._ring.free(slot)
                wrapper.set_exception(exc)
                return
            decode_s = 0.0
            decode_start = 0.0
            try:
                if kind == "shm":
                    stamp = decode_start = time.perf_counter()
                    view = self._ring.read(payload)
                    try:
                        plan = decode_plan(view)
                    finally:
                        view.release()
                    self._ring.free(payload)
                    decode_s = time.perf_counter() - stamp
                elif kind == "wire":
                    if slot is not None and self._ring is not None:
                        self._ring.free(slot)
                    stamp = decode_start = time.perf_counter()
                    plan = decode_plan(payload)
                    decode_s = time.perf_counter() - stamp
                else:
                    plan = payload
            except BaseException as exc:
                wrapper.set_exception(exc)
                return
            counters = self._transport_counters
            counters["plans"].inc()
            counters[f"{kind}_plans"].inc()
            counters["payload_bytes"].inc(nbytes)
            counters["encode_s"].inc(encode_s)
            counters["write_s"].inc(write_s)
            counters["decode_s"].inc(decode_s)
            if _tracing():
                # Worker-side encode/write happen back-to-back right
                # after planning ends; synthesize their spans from the
                # relayed durations anchored at the plan-end stamp.
                if encode_s > 0.0:
                    _add_span(
                        "transport.encode", "transport", end,
                        end + encode_s, args={"bytes": nbytes},
                    )
                if write_s > 0.0:
                    _add_span(
                        "transport.write", "transport", end + encode_s,
                        end + encode_s + write_s, args={"bytes": nbytes},
                    )
                if decode_s > 0.0:
                    _add_span(
                        "transport.decode", "transport", decode_start,
                        decode_start + decode_s,
                        args={"bytes": nbytes, "kind": kind},
                    )
            wrapper.set_result((plan, start, end))

        inner.add_done_callback(relay)
        return wrapper

    def submit(self, index: int, batch, planner=None) -> PlanTicket:
        slot = self._ring.reserve() if self._ring is not None else None
        inner = self._pool.submit(_transport_plan, batch, slot, planner)
        self._account_submit(batch, slot, planner)
        return PlanTicket(self._wrap(inner, slot))

    def resubmit(self, index: int, batch, planner=None) -> PlanTicket:
        """Respawn a job whose previous worker raised or hung."""
        return self.submit(index, batch, planner=planner)

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
        if self._ring is not None:
            self._ring.close()


class KVPlannerBackend:
    """Planning via a :class:`~repro.core.pool.PlannerPool` + KV store.

    The pool publishes each plan under ``plan/<iteration>``;
    :meth:`PlanTicket.result` re-reads it from the store so the yielded
    plan is the genuine round-tripped article every device would see.

    With ``per_device_fetch=True`` the consumer side instead simulates
    every device pulling its own slice (skeleton + instruction stream
    when the pool publishes partial plans, the whole plan otherwise)
    and accumulates the §6.1 consumer wire bytes in
    :attr:`consumer_wire_bytes`.
    """

    name = "kv"

    #: Per-iteration consumer fetch cursors retained for delta
    #: re-fetches.  A re-dispatched job re-publishes its iteration and
    #: the consumer pulls again; with the previous pull's cursors only
    #: the changed per-device slices move.  Each cursor pins the full
    #: per-device payloads of its iteration (that is what a cursor hit
    #: reuses), so the bound is kept tight: re-plans only ever target
    #: the live prefetch window (``lookahead + 1``, typically 2-5
    #: iterations), and older cursors can never be re-pulled.
    MAX_FETCH_CURSORS = 8

    def __init__(
        self,
        pool,
        own_pool: bool = False,
        per_device_fetch: bool = False,
    ) -> None:
        self.pool = pool
        self.own_pool = own_pool
        self.per_device_fetch = per_device_fetch
        self.consumer_wire_bytes = 0
        self._latest: dict = {}
        self._fetched: "OrderedDict[int, dict]" = OrderedDict()
        self._lock = threading.Lock()

    def _ticket(self, inner: Future, index: int) -> PlanTicket:
        pool = self.pool
        wrapper: Future = Future()
        with self._lock:
            self._latest[index] = inner

        def _relay(done: Future) -> None:
            with self._lock:
                superseded = self._latest.get(index) is not inner
            if superseded:
                # A resubmission replaced this job; its (orphaned)
                # wrapper is never consumed, and accounting a consumer
                # pull for a plan nobody consumes would inflate the
                # §6.1 wire bytes.
                wrapper.cancel()
                return
            try:
                done.result()
                if self.per_device_fetch:
                    with self._lock:
                        known = self._fetched.get(index)
                    plan, wire_bytes, fetched = pool.device_pull(
                        index, known=known
                    )
                    with self._lock:
                        self.consumer_wire_bytes += wire_bytes
                        self._fetched[index] = fetched
                        self._fetched.move_to_end(index)
                        while len(self._fetched) > self.MAX_FETCH_CURSORS:
                            self._fetched.popitem(last=False)
                else:
                    plan = pool.fetch(index)
                start, end = pool.plan_interval(index)
                # Consumed: drop the per-iteration bookkeeping (and the
                # future pinning the plan) so unbounded streams run in
                # O(1) backend/pool memory.
                self._prune(index, inner)
                wrapper.set_result((plan, start, end))
            except BaseException as exc:
                # Failure path prunes too: a permanently failed job that
                # ends in the pipeline's inline fallback would otherwise
                # leak its bookkeeping forever.  A subsequent resubmit
                # recreates fresh entries (replace starts a new
                # generation regardless).
                self._prune(index, inner)
                wrapper.set_exception(exc)

        inner.add_done_callback(_relay)
        return PlanTicket(wrapper)

    def _prune(self, index: int, inner: Future) -> None:
        with self._lock:
            if self._latest.get(index) is not inner:
                # Superseded while this relay ran: the replacement owns
                # the bookkeeping now and will prune it itself.
                return
            del self._latest[index]
        self.pool.release(index)

    def submit(self, index: int, batch, planner=None) -> PlanTicket:
        inner = self.pool.submit(index, batch, planner=planner)
        return self._ticket(inner, index)

    def resubmit(self, index: int, batch, planner=None) -> PlanTicket:
        """Respawn: replace the pool's memoized job for this iteration."""
        with self._lock:
            # Supersede the old job *before* the replacement exists, so
            # a late relay firing in the submission window cannot pass
            # the _latest identity checks and release the replacement's
            # bookkeeping.
            self._latest[index] = None
        inner = self.pool.submit(index, batch, planner=planner, replace=True)
        return self._ticket(inner, index)

    def close(self) -> None:
        if self.own_pool:
            self.pool.shutdown()


class ServicePlannerBackend:
    """Planning through a shared :class:`~repro.service.PlanService`.

    The pipeline becomes one tenant of a multi-tenant plan server: each
    job is a ``fetch_plan`` under this backend's ``tenant`` name, so
    the pipeline's traffic is admission-controlled and fair-queued
    against every other tenant, and it transparently benefits from the
    service's hot cache, warm sharded store and pre-warming.

    The reported plan interval brackets the whole fetch — queueing,
    cache/store lookups, planning — because that *is* the latency this
    consumer stalls on; a cache hit reports near-zero width, exactly
    like :class:`CompletedTicket`.

    A per-job ``planner`` override (the streaming pipeline's pinned
    cluster shape) bypasses the service: a pinned shape is a private
    what-if, not the shared workload, and publishing it would poison
    other tenants' cache entries for the same signature.
    """

    name = "service"

    def __init__(self, service, tenant: str = "pipeline",
                 own_service: bool = False, max_workers: int = 2) -> None:
        if max_workers < 1:
            raise ValueError("need at least one fetch worker")
        self.service = service
        self.tenant = tenant
        self.own_service = own_service
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="dcp-svc-fetch"
        )

    def _job(self, batch, planner) -> Tuple:
        if planner is not None:
            return _timed_plan(planner, batch)
        start = time.perf_counter()
        plan = self.service.fetch_plan(self.tenant, batch)
        return plan, start, time.perf_counter()

    def submit(self, index: int, batch, planner=None) -> PlanTicket:
        return PlanTicket(self._pool.submit(self._job, batch, planner))

    def resubmit(self, index: int, batch, planner=None) -> PlanTicket:
        return self.submit(index, batch, planner=planner)

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self.own_service:
            self.service.close()


def make_backend(backend, planner, max_workers: int = 2,
                 max_concurrent_plans: Optional[int] = None):
    """Resolve a backend spec: a name, a backend object, or ``None``."""
    if backend is None or not isinstance(backend, str):
        return backend
    if backend == "thread":
        return ThreadPlannerBackend(
            planner,
            max_workers=max_workers,
            max_concurrent_plans=max_concurrent_plans,
        )
    if backend == "process":
        return ProcessPlannerBackend(planner, max_workers=max_workers)
    raise ValueError(
        f"unknown backend {backend!r}; use 'thread', 'process', or a "
        "backend object (e.g. KVPlannerBackend)"
    )
