"""Overlap pipeline: background planning hidden behind execution (§6.1).

The subsystem that turns the paper's "planning can perfectly overlap
model execution" claim from an analytic replay
(:func:`repro.core.pool.simulate_planning_overlap`) into a measurement:

* :class:`OverlapPipeline` — plans batch ``i + kappa`` on background
  workers while batch ``i`` executes, consulting the thread-safe
  :class:`~repro.core.cache.PlanCache` before dispatching any worker,
  and measuring per-iteration hidden vs exposed planning time.
* :mod:`~repro.pipeline.backends` — thread-pool, process-pool, and
  KV-store (:class:`~repro.core.pool.PlannerPool`) planner workers.
* :class:`~repro.pipeline.driver.PipelineRunner` — drains a pipeline
  through :class:`~repro.runtime.SimExecutor` (or a cost-model stand-in)
  and reports the measured :class:`OverlapStats` + timeline.

``repro.core.DCPDataloader`` and ``repro.core.DistributedDataloader``
are thin wrappers over this package.
"""

from .backends import (
    KVPlannerBackend,
    PlanTicket,
    ProcessPlannerBackend,
    ThreadPlannerBackend,
    make_backend,
)
from .driver import OverlapReport, PipelineRunner, cost_model_executor
from .pipeline import (
    IterationRecord,
    OverlapPipeline,
    OverlapStats,
    plan_fingerprint,
)

__all__ = [
    "OverlapPipeline",
    "OverlapStats",
    "IterationRecord",
    "plan_fingerprint",
    "PlanTicket",
    "ThreadPlannerBackend",
    "ProcessPlannerBackend",
    "KVPlannerBackend",
    "make_backend",
    "OverlapReport",
    "PipelineRunner",
    "cost_model_executor",
]
