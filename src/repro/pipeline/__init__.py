"""Overlap pipeline: background planning hidden behind execution (§6.1).

The subsystem that turns the paper's "planning can perfectly overlap
model execution" claim from an analytic replay
(:func:`repro.core.pool.simulate_planning_overlap`) into a measurement:

* :class:`OverlapPipeline` — plans batch ``i + kappa`` on background
  workers while batch ``i`` executes, consulting the thread-safe
  :class:`~repro.core.cache.PlanCache` (through exactly-one-owner
  reservations) before dispatching any worker, respawning workers that
  raise or hang, and measuring per-iteration hidden vs exposed
  planning time.
* :class:`StreamingOverlapPipeline` — the online variant: plans over
  an unbounded batch iterator (a packer still emitting) and re-plans
  the prefetch window when a
  :class:`~repro.sim.ClusterEventSource` reports device add/remove
  events mid-stream.
* :mod:`~repro.pipeline.backends` — thread-pool (with an optional
  ``max_concurrent_plans`` GIL-contention throttle), process-pool, and
  KV-store (:class:`~repro.core.pool.PlannerPool`) planner workers;
  the KV backend optionally accounts per-device partial plan fetches.
  Process workers return plans zero-copy: columnar wire bytes
  (:mod:`repro.core.planwire`) deposited in a shared-memory
  :class:`~repro.pipeline.shm.PlanRing`, with transparent pipe and
  pickle fallbacks.
* :class:`~repro.pipeline.driver.PipelineRunner` — drains a pipeline
  through :class:`~repro.runtime.SimExecutor` (or a cost-model stand-in)
  and reports the measured :class:`OverlapStats` + timeline.

``repro.core.DCPDataloader`` and ``repro.core.DistributedDataloader``
are thin wrappers over this package.
"""

from .backends import (
    KVPlannerBackend,
    PlanTicket,
    ProcessPlannerBackend,
    ServicePlannerBackend,
    ThreadPlannerBackend,
    make_backend,
)
from .driver import OverlapReport, PipelineRunner, cost_model_executor
from .shm import DEFAULT_SLOT_BYTES, PlanRing, ShmUnavailable, \
    leaked_maps, reclaim_leaked
from .pipeline import (
    IterationRecord,
    OverlapPipeline,
    OverlapStats,
    device_payload,
    plan_diff,
    plan_fingerprint,
)
from .streaming import (
    REPLAN_MODES,
    ClusterPinnedPlanner,
    StreamingOverlapPipeline,
)

__all__ = [
    "OverlapPipeline",
    "StreamingOverlapPipeline",
    "ClusterPinnedPlanner",
    "REPLAN_MODES",
    "OverlapStats",
    "IterationRecord",
    "plan_fingerprint",
    "plan_diff",
    "device_payload",
    "PlanTicket",
    "ThreadPlannerBackend",
    "ProcessPlannerBackend",
    "KVPlannerBackend",
    "ServicePlannerBackend",
    "make_backend",
    "PlanRing",
    "ShmUnavailable",
    "DEFAULT_SLOT_BYTES",
    "leaked_maps",
    "reclaim_leaked",
    "OverlapReport",
    "PipelineRunner",
    "cost_model_executor",
]
