"""DeepSpeed-Ulysses baseline: all-to-all head parallelism ([23] in the paper).

Ulysses keeps every device holding a contiguous token chunk of each
sequence across *all* heads; before attention, an all-to-all
redistributes Q and KV so each device owns *all* tokens of a subset of
head groups, computes complete (undistributed) attention for those
groups, and an all-to-all of the outputs restores the token layout.

Compared to ring attention, Ulysses moves each Q/KV element once
instead of ``R - 1`` times, but its parallel width is capped by the
number of head groups — the reason the paper's 32-GPU setting needs
LoongTrain's hybrid instead.  We enforce that cap (``head_groups %
num_devices == 0``) rather than silently replicating heads.

Like every baseline here, the planner emits the shared instruction
format: the all-to-alls appear as tag-matched point-to-point transfers,
so the executor verifies numerics and the timing simulator charges the
NIC exactly once per element.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..blocks import BlockKind, BlockSet, DataBlockId
from ..scheduling.buffers import BufferManager
from ..scheduling.instructions import (
    BackwardTile,
    BlockwiseAttention,
    BlockwiseAttentionBackward,
    BlockwiseReduction,
    CommLaunch,
    CommWait,
    DevicePlan,
    ExecutionPlan,
    FinalizeArg,
    RecvArg,
    SendArg,
    Tile,
)
from ..sim.cluster import ClusterSpec
from .common import contiguous_slice_assignment, slices_by_assignment

__all__ = ["UlyssesPlanner", "run_ulysses_forward_backward"]


class UlyssesPlanner:
    """All-to-all head-parallel attention (DeepSpeed Ulysses)."""

    name = "ulysses"

    def plan(self, block_set: BlockSet, cluster: ClusterSpec) -> ExecutionPlan:
        num_devices = cluster.num_devices
        attention = block_set.attention
        if attention.head_groups % num_devices != 0:
            raise ValueError(
                f"Ulysses needs head groups ({attention.head_groups}) "
                f"divisible by devices ({num_devices})"
            )
        groups_per_device = attention.head_groups // num_devices

        assign = contiguous_slice_assignment(block_set, num_devices)
        device_slices = slices_by_assignment(block_set, assign, num_devices)
        slice_owner = {
            (ts.seq_index, ts.block_index): int(assign[i])
            for i, ts in enumerate(block_set.token_slices)
        }

        def group_owner(head_group: int) -> int:
            return head_group // groups_per_device

        device_plans: Dict[int, DevicePlan] = {}
        for device in range(num_devices):
            device_plans[device] = self._device_plan(
                device,
                block_set,
                num_devices,
                groups_per_device,
                device_slices[device],
                slice_owner,
                group_owner,
            )
        return ExecutionPlan(
            block_set=block_set,
            cluster=cluster,
            device_plans=device_plans,
            meta={"planner": self.name, "groups_per_device": groups_per_device},
        )

    def _device_plan(
        self,
        device: int,
        block_set: BlockSet,
        num_devices: int,
        groups_per_device: int,
        local_slice_ids: List[int],
        slice_owner: Dict[Tuple[int, int], int],
        group_owner,
    ) -> DevicePlan:
        attention = block_set.attention
        buffers = BufferManager()
        instructions: List = []
        my_groups = range(
            device * groups_per_device, (device + 1) * groups_per_device
        )
        local_slices = [block_set.token_slices[i] for i in local_slice_ids]

        # Local slots: all head groups of my token slices.
        q_slots: Dict[Tuple[int, int, int], int] = {}
        kv_slots: Dict[Tuple[int, int, int], int] = {}
        o_slots: Dict[Tuple[int, int, int], int] = {}
        for token_slice in local_slices:
            for head_group in range(attention.head_groups):
                key = (token_slice.seq_index, token_slice.block_index, head_group)
                q_slots[key] = buffers.alloc("q")
                kv_slots[key] = buffers.alloc("kv")
                o_slots[key] = buffers.alloc("o")

        # -- forward all-to-all: gather Q/KV of my head groups --------------
        op_scatter = device * 1_000_000
        sends: List[SendArg] = []
        recvs: List[RecvArg] = []
        gathered_q: Dict[Tuple[int, int, int], int] = {}
        gathered_kv: Dict[Tuple[int, int, int], int] = {}
        for token_slice in block_set.token_slices:
            key_base = (token_slice.seq_index, token_slice.block_index)
            owner = slice_owner[key_base]
            for head_group in range(attention.head_groups):
                peer = group_owner(head_group)
                key = key_base + (head_group,)
                q_id = DataBlockId(BlockKind.Q, *key)
                kv_id = DataBlockId(BlockKind.KV, *key)
                if owner == device and peer != device:
                    sends.append(
                        SendArg(
                            peer=peer,
                            buffer="q",
                            slot=q_slots[key],
                            tag=("uly-q", key),
                            nbytes=block_set.block_bytes(q_id),
                        )
                    )
                    sends.append(
                        SendArg(
                            peer=peer,
                            buffer="kv",
                            slot=kv_slots[key],
                            tag=("uly-kv", key),
                            nbytes=block_set.block_bytes(kv_id),
                        )
                    )
                elif peer == device:
                    if owner == device:
                        gathered_q[key] = q_slots[key]
                        gathered_kv[key] = kv_slots[key]
                    else:
                        q_slot = buffers.alloc("q")
                        kv_slot = buffers.alloc("kv")
                        gathered_q[key] = q_slot
                        gathered_kv[key] = kv_slot
                        recvs.append(
                            RecvArg(
                                peer=owner,
                                buffer="q",
                                slot=q_slot,
                                tag=("uly-q", key),
                                nbytes=block_set.block_bytes(q_id),
                            )
                        )
                        recvs.append(
                            RecvArg(
                                peer=owner,
                                buffer="kv",
                                slot=kv_slot,
                                tag=("uly-kv", key),
                                nbytes=block_set.block_bytes(kv_id),
                            )
                        )
        if sends or recvs:
            instructions.append(
                CommLaunch(op_id=op_scatter, sends=tuple(sends),
                           recvs=tuple(recvs))
            )
            if recvs:
                instructions.append(CommWait(op_id=op_scatter))

        # -- complete attention for my head groups ---------------------------
        acc_slots: Dict[Tuple[int, int, int], int] = {}
        tiles: List[Tile] = []
        for comp in block_set.comp_blocks:
            if comp.head_group not in my_groups:
                continue
            out_key = (comp.seq_index, comp.q_block, comp.head_group)
            if out_key not in acc_slots:
                acc_slots[out_key] = buffers.alloc("acc")
            tiles.append(
                Tile(
                    q_slot=gathered_q[(comp.seq_index, comp.q_block,
                                       comp.head_group)],
                    kv_slot=gathered_kv[(comp.seq_index, comp.kv_block,
                                         comp.head_group)],
                    acc_slot=acc_slots[out_key],
                    seq_index=comp.seq_index,
                    head_group=comp.head_group,
                    q_block=comp.q_block,
                    kv_block=comp.kv_block,
                )
            )
        if tiles:
            instructions.append(BlockwiseAttention(tuple(tiles)))

        # -- backward all-to-all: return outputs to token owners -------------
        op_gather = op_scatter + 1
        out_sends: List[SendArg] = []
        for key, acc_slot in sorted(acc_slots.items()):
            owner = slice_owner[(key[0], key[1])]
            if owner == device:
                continue
            o_id = DataBlockId(BlockKind.O, *key)
            out_sends.append(
                SendArg(
                    peer=owner,
                    buffer="acc",
                    slot=acc_slot,
                    tag=("uly-o", key),
                    nbytes=block_set.block_bytes(o_id),
                )
            )
        out_recvs: List[RecvArg] = []
        remote_partials: Dict[Tuple[int, int, int], int] = {}
        for token_slice in local_slices:
            for head_group in range(attention.head_groups):
                peer = group_owner(head_group)
                if peer == device:
                    continue
                key = (token_slice.seq_index, token_slice.block_index, head_group)
                o_id = DataBlockId(BlockKind.O, *key)
                slot = buffers.alloc("acc")
                remote_partials[key] = slot
                out_recvs.append(
                    RecvArg(
                        peer=peer,
                        buffer="acc",
                        slot=slot,
                        tag=("uly-o", key),
                        nbytes=block_set.block_bytes(o_id),
                    )
                )
        if out_sends or out_recvs:
            instructions.append(
                CommLaunch(
                    op_id=op_gather, sends=tuple(out_sends),
                    recvs=tuple(out_recvs),
                )
            )
            if out_recvs:
                instructions.append(CommWait(op_id=op_gather))

        # -- finalize every local output block --------------------------------
        # Each output block is computed entirely on one head-group owner,
        # so finalization never needs merges.
        finalizes = []
        my_final_acc: Dict[Tuple[int, int, int], int] = {}
        for key, o_slot in o_slots.items():
            if key in remote_partials:
                acc = remote_partials[key]
            elif key in acc_slots:
                acc = acc_slots[key]
            else:
                # Fully-masked output rows: leave the block zeroed.
                continue
            my_final_acc[key] = acc
            finalizes.append(FinalizeArg(acc_slot=acc, o_slot=o_slot))
        if finalizes:
            instructions.append(BlockwiseReduction(finalizes=tuple(finalizes)))

        return DevicePlan(
            device=device,
            instructions=instructions,
            buffer_sizes=buffers.sizes(),
            local_slices=local_slices,
            o_slots=o_slots,
            q_slots=q_slots,
            kv_slots=kv_slots,
            acc_slots=my_final_acc,
        )

    # -- backward ------------------------------------------------------------

    def plan_backward(
        self, block_set: BlockSet, cluster: ClusterSpec
    ) -> ExecutionPlan:
        """Backward plan mirroring the forward all-to-alls.

        Token owners stage dO packages (they hold the finalized forward
        accumulators), scatter Q/KV/dO to head-group owners, which run
        the backward tiles for their groups and return the dQ/dKV
        accumulators — one reverse all-to-all.
        """
        num_devices = cluster.num_devices
        attention = block_set.attention
        if attention.head_groups % num_devices != 0:
            raise ValueError(
                f"Ulysses needs head groups ({attention.head_groups}) "
                f"divisible by devices ({num_devices})"
            )
        groups_per_device = attention.head_groups // num_devices
        assign = contiguous_slice_assignment(block_set, num_devices)
        device_slices = slices_by_assignment(block_set, assign, num_devices)
        slice_owner = {
            (ts.seq_index, ts.block_index): int(assign[i])
            for i, ts in enumerate(block_set.token_slices)
        }

        def group_owner(head_group: int) -> int:
            return head_group // groups_per_device

        device_plans: Dict[int, DevicePlan] = {}
        for device in range(num_devices):
            device_plans[device] = self._backward_device_plan(
                device,
                block_set,
                groups_per_device,
                device_slices[device],
                slice_owner,
                group_owner,
            )
        return ExecutionPlan(
            block_set=block_set,
            cluster=cluster,
            device_plans=device_plans,
            meta={"planner": f"{self.name}_backward"},
        )

    def _backward_device_plan(
        self,
        device: int,
        block_set: BlockSet,
        groups_per_device: int,
        local_slice_ids: List[int],
        slice_owner: Dict[Tuple[int, int], int],
        group_owner,
    ) -> DevicePlan:
        attention = block_set.attention
        buffers = BufferManager()
        instructions: List = []
        my_groups = range(
            device * groups_per_device, (device + 1) * groups_per_device
        )
        local_slices = [block_set.token_slices[i] for i in local_slice_ids]

        q_slots: Dict[Tuple[int, int, int], int] = {}
        kv_slots: Dict[Tuple[int, int, int], int] = {}
        do_slots: Dict[Tuple[int, int, int], int] = {}
        dq_slots: Dict[Tuple[int, int, int], int] = {}
        dkv_slots: Dict[Tuple[int, int, int], int] = {}
        for token_slice in local_slices:
            for head_group in range(attention.head_groups):
                key = (token_slice.seq_index, token_slice.block_index,
                       head_group)
                q_slots[key] = buffers.alloc("q")
                kv_slots[key] = buffers.alloc("kv")
                do_slots[key] = buffers.alloc("do")
                dq_slots[key] = buffers.alloc("dq")
                dkv_slots[key] = buffers.alloc("dkv")

        # -- scatter Q / KV / dO to group owners -----------------------------
        op_scatter = device * 1_000_000 + 500_000
        sends: List[SendArg] = []
        recvs: List[RecvArg] = []
        gathered_q: Dict[Tuple[int, int, int], int] = {}
        gathered_kv: Dict[Tuple[int, int, int], int] = {}
        gathered_do: Dict[Tuple[int, int, int], int] = {}
        for token_slice in block_set.token_slices:
            key_base = (token_slice.seq_index, token_slice.block_index)
            owner = slice_owner[key_base]
            for head_group in range(attention.head_groups):
                peer = group_owner(head_group)
                key = key_base + (head_group,)
                q_id = DataBlockId(BlockKind.Q, *key)
                kv_id = DataBlockId(BlockKind.KV, *key)
                o_id = DataBlockId(BlockKind.O, *key)
                payloads = (
                    ("q", q_id), ("kv", kv_id), ("do", o_id),
                )
                if owner == device and peer != device:
                    local = {
                        "q": q_slots[key],
                        "kv": kv_slots[key],
                        "do": do_slots[key],
                    }
                    for buffer, block_id in payloads:
                        sends.append(
                            SendArg(
                                peer=peer,
                                buffer=buffer,
                                slot=local[buffer],
                                tag=(f"ulyb-{buffer}", key),
                                nbytes=block_set.block_bytes(block_id),
                            )
                        )
                elif peer == device:
                    if owner == device:
                        gathered_q[key] = q_slots[key]
                        gathered_kv[key] = kv_slots[key]
                        gathered_do[key] = do_slots[key]
                    else:
                        slots = {
                            "q": buffers.alloc("q"),
                            "kv": buffers.alloc("kv"),
                            "do": buffers.alloc("do"),
                        }
                        gathered_q[key] = slots["q"]
                        gathered_kv[key] = slots["kv"]
                        gathered_do[key] = slots["do"]
                        for buffer, block_id in payloads:
                            recvs.append(
                                RecvArg(
                                    peer=owner,
                                    buffer=buffer,
                                    slot=slots[buffer],
                                    tag=(f"ulyb-{buffer}", key),
                                    nbytes=block_set.block_bytes(block_id),
                                )
                            )
        if sends or recvs:
            instructions.append(
                CommLaunch(op_id=op_scatter, sends=tuple(sends),
                           recvs=tuple(recvs))
            )
            if recvs:
                instructions.append(CommWait(op_id=op_scatter))

        # -- backward tiles for my head groups --------------------------------
        dq_acc: Dict[Tuple[int, int, int], int] = {}
        dkv_acc: Dict[Tuple[int, int, int], int] = {}
        tiles: List[BackwardTile] = []
        for comp in block_set.comp_blocks:
            if comp.head_group not in my_groups:
                continue
            q_key = (comp.seq_index, comp.q_block, comp.head_group)
            kv_key = (comp.seq_index, comp.kv_block, comp.head_group)
            if q_key not in dq_acc:
                dq_acc[q_key] = (
                    dq_slots[q_key]
                    if slice_owner[q_key[:2]] == device
                    else buffers.alloc("dq")
                )
            if kv_key not in dkv_acc:
                dkv_acc[kv_key] = (
                    dkv_slots[kv_key]
                    if slice_owner[kv_key[:2]] == device
                    else buffers.alloc("dkv")
                )
            tiles.append(
                BackwardTile(
                    q_slot=gathered_q[q_key],
                    kv_slot=gathered_kv[kv_key],
                    do_slot=gathered_do[q_key],
                    dq_slot=dq_acc[q_key],
                    dkv_slot=dkv_acc[kv_key],
                    seq_index=comp.seq_index,
                    head_group=comp.head_group,
                    q_block=comp.q_block,
                    kv_block=comp.kv_block,
                )
            )
        if tiles:
            instructions.append(BlockwiseAttentionBackward(tuple(tiles)))

        # -- return gradients to token owners ----------------------------------
        op_gather = op_scatter + 1
        grad_sends: List[SendArg] = []
        for key, slot in sorted(dq_acc.items()):
            owner = slice_owner[key[:2]]
            if owner == device:
                continue
            q_id = DataBlockId(BlockKind.Q, *key)
            grad_sends.append(
                SendArg(
                    peer=owner, buffer="dq", slot=slot,
                    tag=("ulyb-dq", key),
                    nbytes=block_set.block_bytes(q_id),
                )
            )
        for key, slot in sorted(dkv_acc.items()):
            owner = slice_owner[key[:2]]
            if owner == device:
                continue
            kv_id = DataBlockId(BlockKind.KV, *key)
            grad_sends.append(
                SendArg(
                    peer=owner, buffer="dkv", slot=slot,
                    tag=("ulyb-dkv", key),
                    nbytes=block_set.block_bytes(kv_id),
                )
            )
        grad_recvs: List[RecvArg] = []
        for token_slice in local_slices:
            key_base = (token_slice.seq_index, token_slice.block_index)
            for head_group in range(attention.head_groups):
                peer = group_owner(head_group)
                if peer == device:
                    continue
                key = key_base + (head_group,)
                workload = block_set.seq_workloads[key[0]]
                q_id = DataBlockId(BlockKind.Q, *key)
                kv_id = DataBlockId(BlockKind.KV, *key)
                # The group owner only produced gradients for blocks
                # with unmasked work.
                if workload[key[1], :].any():
                    grad_recvs.append(
                        RecvArg(
                            peer=peer, buffer="dq", slot=dq_slots[key],
                            tag=("ulyb-dq", key),
                            nbytes=block_set.block_bytes(q_id),
                        )
                    )
                if workload[:, key[1]].any():
                    grad_recvs.append(
                        RecvArg(
                            peer=peer, buffer="dkv", slot=dkv_slots[key],
                            tag=("ulyb-dkv", key),
                            nbytes=block_set.block_bytes(kv_id),
                        )
                    )
        if grad_sends or grad_recvs:
            instructions.append(
                CommLaunch(op_id=op_gather, sends=tuple(grad_sends),
                           recvs=tuple(grad_recvs))
            )
            if grad_recvs:
                instructions.append(CommWait(op_id=op_gather))

        return DevicePlan(
            device=device,
            instructions=instructions,
            buffer_sizes=buffers.sizes(),
            local_slices=local_slices,
            q_slots=q_slots,
            kv_slots=kv_slots,
            do_slots=do_slots,
            dq_slots=dq_slots,
            dkv_slots=dkv_slots,
        )


def run_ulysses_forward_backward(
    block_set: BlockSet,
    cluster: ClusterSpec,
    inputs,
    grad_outputs,
):
    """Execute Ulysses attention forward + backward on the simulator.

    Returns ``(outputs, AttentionGrads, forward_executor,
    backward_executor)`` like
    :func:`repro.runtime.run_plans_forward_backward`.
    """
    from ..runtime.backward import run_plans_forward_backward

    planner = UlyssesPlanner()
    forward_plan = planner.plan(block_set, cluster)
    backward_plan = planner.plan_backward(block_set, cluster)
    return run_plans_forward_backward(
        forward_plan, backward_plan, inputs, grad_outputs
    )
