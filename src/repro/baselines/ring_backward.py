"""Ring attention backward pass (RingFlashAttention semantics).

Backward in ring attention circulates *two* payloads per hop: the KV
chunk (needed to recompute tile probabilities) and its running dKV
accumulator.  Each device adds its gradient contribution as the pair
passes through; after the last step, every accumulator takes one final
hop to the KV chunk's home device.  dQ accumulates locally (Q never
moves), and the dO/lse/delta packages are local too — exactly the
communication doubling the paper's analytic backward model assumes.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


from ..blocks import BlockKind, BlockSet, DataBlockId
from ..scheduling.buffers import BufferManager
from ..scheduling.instructions import (
    BackwardTile,
    BlockwiseAttentionBackward,
    CommLaunch,
    CommWait,
    DevicePlan,
    ExecutionPlan,
    RecvArg,
    SendArg,
)
from ..sim.cluster import ClusterSpec
from .common import (
    contiguous_slice_assignment,
    slices_by_assignment,
    zigzag_slice_assignment,
)

__all__ = ["plan_ring_backward", "run_ring_forward_backward"]


def run_ring_forward_backward(
    block_set: BlockSet,
    cluster: ClusterSpec,
    inputs,
    grad_outputs,
    zigzag: bool = False,
):
    """Forward + backward through the RFA ring on the simulated cluster.

    Returns ``(outputs, grads, forward_executor, backward_executor)``
    like :func:`repro.runtime.run_plans_forward_backward`.
    """
    from ..runtime.backward import run_plans_forward_backward
    from .ring import RingAttentionPlanner

    forward_plan = RingAttentionPlanner(zigzag=zigzag).plan(block_set, cluster)
    backward_plan = plan_ring_backward(block_set, cluster, zigzag=zigzag)
    return run_plans_forward_backward(
        forward_plan, backward_plan, inputs, grad_outputs, init_dkv=True
    )


def plan_ring_backward(
    block_set: BlockSet, cluster: ClusterSpec, zigzag: bool = False
) -> ExecutionPlan:
    """Build the ring backward plan (matches the RFA forward placement)."""
    num_devices = cluster.num_devices
    attention = block_set.attention
    assign = (
        zigzag_slice_assignment(block_set, num_devices)
        if zigzag
        else contiguous_slice_assignment(block_set, num_devices)
    )
    device_slices = slices_by_assignment(block_set, assign, num_devices)

    chunks: List[List[DataBlockId]] = []
    for device in range(num_devices):
        chunk = []
        for slice_index in device_slices[device]:
            token_slice = block_set.token_slices[slice_index]
            for head_group in range(attention.head_groups):
                chunk.append(
                    DataBlockId(
                        BlockKind.KV,
                        token_slice.seq_index,
                        token_slice.block_index,
                        head_group,
                    )
                )
        chunks.append(chunk)

    slice_of = {
        (ts.seq_index, ts.block_index): i
        for i, ts in enumerate(block_set.token_slices)
    }
    tiles_by: Dict[Tuple[int, int], List] = {}
    for comp in block_set.comp_blocks:
        owner = int(assign[slice_of[(comp.seq_index, comp.q_block)]])
        source = int(assign[slice_of[(comp.seq_index, comp.kv_block)]])
        step = (owner - source) % num_devices
        tiles_by.setdefault((owner, step), []).append(comp)

    def dkv_bytes(block: DataBlockId) -> int:
        return block_set.block_bytes(block)  # dK+dV mirror K+V

    device_plans: Dict[int, DevicePlan] = {}
    for device in range(num_devices):
        buffers = BufferManager()
        instructions: List = []
        q_slots: Dict[Tuple[int, int, int], int] = {}
        kv_slots: Dict[Tuple[int, int, int], int] = {}
        do_slots: Dict[Tuple[int, int, int], int] = {}
        dq_slots: Dict[Tuple[int, int, int], int] = {}
        dkv_slots: Dict[Tuple[int, int, int], int] = {}
        local_slices = [
            block_set.token_slices[i] for i in device_slices[device]
        ]
        for token_slice in local_slices:
            for head_group in range(attention.head_groups):
                key = (token_slice.seq_index, token_slice.block_index,
                       head_group)
                q_slots[key] = buffers.alloc("q")
                kv_slots[key] = buffers.alloc("kv")
                do_slots[key] = buffers.alloc("do")
                dq_slots[key] = buffers.alloc("dq")
                dkv_slots[key] = buffers.alloc("dkv")

        # Current circulating slots of (kv, dkv) per block on this device.
        kv_current: Dict[DataBlockId, int] = {
            DataBlockId(BlockKind.KV, k[0], k[1], k[2]): slot
            for k, slot in kv_slots.items()
        }
        dkv_current: Dict[DataBlockId, int] = {
            DataBlockId(BlockKind.KV, k[0], k[1], k[2]): slot
            for k, slot in dkv_slots.items()
        }
        next_peer = (device + 1) % num_devices
        prev_peer = (device - 1) % num_devices
        op_base = device * 1_000_000

        for step in range(num_devices):
            held = (device - step) % num_devices
            incoming = (device - step - 1) % num_devices

            tiles = []
            for comp in tiles_by.get((device, step), []):
                q_key = (comp.seq_index, comp.q_block, comp.head_group)
                tiles.append(
                    BackwardTile(
                        q_slot=q_slots[q_key],
                        kv_slot=kv_current[comp.kv_input],
                        do_slot=do_slots[q_key],
                        dq_slot=dq_slots[q_key],
                        dkv_slot=dkv_current[comp.kv_input],
                        seq_index=comp.seq_index,
                        head_group=comp.head_group,
                        q_block=comp.q_block,
                        kv_block=comp.kv_block,
                    )
                )
            if tiles:
                instructions.append(BlockwiseAttentionBackward(tuple(tiles)))

            if step < num_devices - 1:
                # Forward the held chunk (kv + dkv) after computing on it.
                op_id = op_base + step
                sends = []
                for block in chunks[held]:
                    sends.append(
                        SendArg(
                            peer=next_peer, buffer="kv",
                            slot=kv_current[block],
                            tag=("bwring", "kv", step, block),
                            nbytes=block_set.block_bytes(block),
                        )
                    )
                    sends.append(
                        SendArg(
                            peer=next_peer, buffer="dkv",
                            slot=dkv_current[block],
                            tag=("bwring", "dkv", step, block),
                            nbytes=dkv_bytes(block),
                        )
                    )
                recvs = []
                kv_next: Dict[DataBlockId, int] = {}
                dkv_next: Dict[DataBlockId, int] = {}
                for block in chunks[incoming]:
                    kv_slot = buffers.alloc("kv")
                    dkv_slot = buffers.alloc("dkv")
                    kv_next[block] = kv_slot
                    dkv_next[block] = dkv_slot
                    recvs.append(
                        RecvArg(
                            peer=prev_peer, buffer="kv", slot=kv_slot,
                            tag=("bwring", "kv", step, block),
                            nbytes=block_set.block_bytes(block),
                        )
                    )
                    recvs.append(
                        RecvArg(
                            peer=prev_peer, buffer="dkv", slot=dkv_slot,
                            tag=("bwring", "dkv", step, block),
                            nbytes=dkv_bytes(block),
                        )
                    )
                if sends or recvs:
                    instructions.append(
                        CommLaunch(op_id=op_id, sends=tuple(sends),
                                   recvs=tuple(recvs))
                    )
                    instructions.append(CommWait(op_id=op_id))
                # Retire the forwarded slots (payloads were snapshotted at
                # launch) and adopt the incoming chunk.
                for block in chunks[held]:
                    if step > 0:
                        buffers.free("kv", kv_current.pop(block))
                        buffers.free("dkv", dkv_current.pop(block))
                    else:
                        kv_current.pop(block)
                        dkv_current.pop(block)
                kv_current.update(kv_next)
                dkv_current.update(dkv_next)

        # Final hop: the chunk held after the last step belongs to the
        # next device; its accumulator is complete — send it home.
        final_held = (device + 1) % num_devices
        op_id = op_base + num_devices
        sends = tuple(
            SendArg(
                peer=next_peer, buffer="dkv",
                slot=dkv_current[block],
                tag=("bwring", "final", block),
                nbytes=dkv_bytes(block),
            )
            for block in chunks[final_held]
        ) if num_devices > 1 else ()
        recvs = tuple(
            RecvArg(
                peer=prev_peer, buffer="dkv",
                slot=dkv_slots[(block.seq_index, block.block_index,
                                block.head_group)],
                tag=("bwring", "final", block),
                nbytes=dkv_bytes(block),
            )
            for block in chunks[device]
        ) if num_devices > 1 else ()
        if sends or recvs:
            instructions.append(
                CommLaunch(op_id=op_id, sends=sends, recvs=recvs)
            )
            instructions.append(CommWait(op_id=op_id))

        plan = DevicePlan(
            device=device,
            instructions=instructions,
            buffer_sizes=buffers.sizes(),
            local_slices=local_slices,
            o_slots={},
            q_slots=q_slots,
            kv_slots=kv_slots,
        )
        plan.do_slots = do_slots
        plan.dq_slots = dq_slots
        plan.dkv_slots = dkv_slots
        device_plans[device] = plan

    return ExecutionPlan(
        block_set=block_set,
        cluster=cluster,
        device_plans=device_plans,
        meta={
            "planner": "rfa_zigzag" if zigzag else "rfa_ring",
            "phase": "backward",
        },
    )
