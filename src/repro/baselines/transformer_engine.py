"""TransformerEngine-style baseline (paper baseline (iii), [30]).

Parallelizes attention along both the head and the sequence dimension:
with head-parallel degree ``hp`` (= number of KV groups, minimizing its
communication, exactly as the paper configures it) the ``R`` devices
form a grid of ``sr = R / hp`` ring positions x ``hp`` head rows.
Token slices are zigzag-assigned to ring positions; inside a position,
slice homes alternate between the ``hp`` sibling devices.

Execution per device ``(p, h)``:

1. *prologue* (the all-to-all in real TE): fetch the head-group-``h``
   Q/KV blocks of position ``p`` that are homed on sibling devices;
2. ``sr`` ring steps circulating the head-row's KV chunks — statically,
   every step, regardless of mask sparsity (the baseline inefficiency
   DCP removes);
3. *epilogue*: ship partial outputs back to their home devices, merge,
   finalize.

Following §7.1, this is the paper's own "enhanced TE": variable-length
inputs are supported and arbitrary masks are applied inside each local
attention step (fully masked tiles are skipped by the kernel, but the
communication schedule never changes).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..blocks import BlockKind, BlockSet, DataBlockId
from ..scheduling.buffers import BufferManager
from ..scheduling.instructions import (
    BlockwiseAttention,
    BlockwiseReduction,
    CommLaunch,
    CommWait,
    DevicePlan,
    ExecutionPlan,
    FinalizeArg,
    MergeArg,
    RecvArg,
    SendArg,
    Tile,
)
from ..sim.cluster import ClusterSpec
from .common import slices_by_assignment, zigzag_slice_assignment

__all__ = ["TransformerEnginePlanner"]


class TransformerEnginePlanner:
    """Head + sequence hybrid CP with static zigzag placement."""

    def __init__(self, head_parallel: int = 0) -> None:
        # 0 means "use the attention spec's head-group count".
        self.head_parallel = head_parallel

    name = "te"

    def plan(self, block_set: BlockSet, cluster: ClusterSpec) -> ExecutionPlan:
        attention = block_set.attention
        hp = self.head_parallel or attention.head_groups
        if attention.head_groups % hp != 0:
            raise ValueError("head-parallel degree must divide head groups")
        num_devices = cluster.num_devices
        if num_devices % hp != 0:
            raise ValueError("cluster size must be divisible by head parallel")
        sr = num_devices // hp  # ring length

        position_of_slice = zigzag_slice_assignment(block_set, sr)
        slices_per_position = slices_by_assignment(block_set, position_of_slice, sr)

        def device_of(position: int, head_row: int) -> int:
            return position * hp + head_row

        # Slice homes alternate between the position's sibling devices.
        slice_home = np.zeros(len(block_set.token_slices), dtype=np.int64)
        for position in range(sr):
            for order, slice_index in enumerate(slices_per_position[position]):
                slice_home[slice_index] = device_of(position, order % hp)

        def head_row_of(head_group: int) -> int:
            return head_group % hp

        # KV chunk of (position, head_row): blocks this row's ring moves.
        chunks: Dict[Tuple[int, int], List[DataBlockId]] = {
            (p, h): [] for p in range(sr) for h in range(hp)
        }
        groups_of_row: Dict[int, List[int]] = {h: [] for h in range(hp)}
        for head_group in range(attention.head_groups):
            groups_of_row[head_row_of(head_group)].append(head_group)
        for position in range(sr):
            for slice_index in slices_per_position[position]:
                token_slice = block_set.token_slices[slice_index]
                for head_group in range(attention.head_groups):
                    chunks[(position, head_row_of(head_group))].append(
                        DataBlockId(
                            BlockKind.KV,
                            token_slice.seq_index,
                            token_slice.block_index,
                            head_group,
                        )
                    )

        # Computation tiles grouped by (device, ring step).
        slice_of = {
            (ts.seq_index, ts.block_index): i
            for i, ts in enumerate(block_set.token_slices)
        }
        tiles_by: Dict[Tuple[int, int], List] = {}
        produced: set = set()
        for comp in block_set.comp_blocks:
            q_position = int(
                position_of_slice[slice_of[(comp.seq_index, comp.q_block)]]
            )
            kv_position = int(
                position_of_slice[slice_of[(comp.seq_index, comp.kv_block)]]
            )
            owner = device_of(q_position, head_row_of(comp.head_group))
            step = (q_position - kv_position) % sr
            tiles_by.setdefault((owner, step), []).append(comp)
            produced.add((owner, (comp.seq_index, comp.q_block, comp.head_group)))

        device_plans: Dict[int, DevicePlan] = {}
        for position in range(sr):
            for head_row in range(hp):
                device = device_of(position, head_row)
                device_plans[device] = self._device_plan(
                    device,
                    position,
                    head_row,
                    hp,
                    sr,
                    block_set,
                    slice_home,
                    slices_per_position,
                    chunks,
                    tiles_by,
                    groups_of_row[head_row],
                    produced,
                )
        return ExecutionPlan(
            block_set=block_set,
            cluster=cluster,
            device_plans=device_plans,
            meta={"planner": self.name, "head_parallel": hp, "ring": sr},
        )

    def _device_plan(
        self,
        device: int,
        position: int,
        head_row: int,
        hp: int,
        sr: int,
        block_set: BlockSet,
        slice_home: np.ndarray,
        slices_per_position: List[List[int]],
        chunks: Dict[Tuple[int, int], List[DataBlockId]],
        tiles_by: Dict[Tuple[int, int], List],
        my_head_groups: List[int],
        produced: set,
    ) -> DevicePlan:
        attention = block_set.attention
        buffers = BufferManager()
        instructions: List = []
        q_slots: Dict[Tuple[int, int, int], int] = {}
        kv_slots: Dict[Tuple[int, int, int], int] = {}
        o_slots: Dict[Tuple[int, int, int], int] = {}
        acc_slots: Dict[Tuple[int, int, int], int] = {}
        remote_q: Dict[DataBlockId, int] = {}

        local_slices = [
            block_set.token_slices[i]
            for i in range(len(block_set.token_slices))
            if int(slice_home[i]) == device
        ]
        for token_slice in local_slices:
            for head_group in range(attention.head_groups):
                key = (token_slice.seq_index, token_slice.block_index, head_group)
                q_slots[key] = buffers.alloc("q")
                kv_slots[key] = buffers.alloc("kv")
                o_slots[key] = buffers.alloc("o")

        def acc_for(key: Tuple[int, int, int]) -> int:
            if key not in acc_slots:
                acc_slots[key] = buffers.alloc("acc")
            return acc_slots[key]

        slice_of = {
            (ts.seq_index, ts.block_index): i
            for i, ts in enumerate(block_set.token_slices)
        }

        # -- prologue: gather my head groups' Q and KV of my position ----
        current: Dict[DataBlockId, int] = {}
        prologue_recvs: List[RecvArg] = []
        for slice_index in slices_per_position[position]:
            token_slice = block_set.token_slices[slice_index]
            home = int(slice_home[slice_index])
            for head_group in my_head_groups:
                kv_block = DataBlockId(
                    BlockKind.KV,
                    token_slice.seq_index,
                    token_slice.block_index,
                    head_group,
                )
                q_block = DataBlockId(
                    BlockKind.Q,
                    token_slice.seq_index,
                    token_slice.block_index,
                    head_group,
                )
                key = (token_slice.seq_index, token_slice.block_index, head_group)
                if home == device:
                    current[kv_block] = kv_slots[key]
                    continue
                for block, buffer in ((q_block, "q"), (kv_block, "kv")):
                    slot = buffers.alloc(buffer)
                    if buffer == "q":
                        remote_q[block] = slot
                    else:
                        current[kv_block] = slot
                    prologue_recvs.append(
                        RecvArg(
                            peer=home,
                            buffer=buffer,
                            slot=slot,
                            tag=("a2a", block),
                            nbytes=block_set.block_bytes(block),
                        )
                    )
        # Matching prologue sends: blocks homed here that siblings need.
        prologue_sends: List[SendArg] = []
        for token_slice in local_slices:
            for head_group in range(attention.head_groups):
                row = head_group % hp
                if row == head_row:
                    continue
                sibling = position * hp + row
                key = (token_slice.seq_index, token_slice.block_index, head_group)
                for kind, buffer, slot in (
                    (BlockKind.Q, "q", q_slots[key]),
                    (BlockKind.KV, "kv", kv_slots[key]),
                ):
                    block = DataBlockId(
                        kind,
                        token_slice.seq_index,
                        token_slice.block_index,
                        head_group,
                    )
                    prologue_sends.append(
                        SendArg(
                            peer=sibling,
                            buffer=buffer,
                            slot=slot,
                            tag=("a2a", block),
                            nbytes=block_set.block_bytes(block),
                        )
                    )
        op_base = device * 1_000_000
        if prologue_sends or prologue_recvs:
            instructions.append(
                CommLaunch(
                    op_id=op_base,
                    sends=tuple(prologue_sends),
                    recvs=tuple(prologue_recvs),
                )
            )
            instructions.append(CommWait(op_id=op_base))

        def q_slot_of(comp) -> int:
            key = (comp.seq_index, comp.q_block, comp.head_group)
            if key in q_slots:
                return q_slots[key]
            return remote_q[comp.q_input]

        # -- ring steps over positions (head row fixed) --------------------
        next_peer = ((position + 1) % sr) * hp + head_row
        prev_peer = ((position - 1) % sr) * hp + head_row
        for step in range(sr):
            held = (position - step) % sr
            incoming = (position - step - 1) % sr
            op_id = op_base + 1 + step
            recv_slots: Dict[DataBlockId, int] = {}
            if step < sr - 1:
                sends = tuple(
                    SendArg(
                        peer=next_peer,
                        buffer="kv",
                        slot=current[block],
                        tag=("ring", head_row, step, block),
                        nbytes=block_set.block_bytes(block),
                    )
                    for block in chunks[(held, head_row)]
                )
                recvs = []
                for block in chunks[(incoming, head_row)]:
                    slot = buffers.alloc("kv")
                    recv_slots[block] = slot
                    recvs.append(
                        RecvArg(
                            peer=prev_peer,
                            buffer="kv",
                            slot=slot,
                            tag=("ring", head_row, step, block),
                            nbytes=block_set.block_bytes(block),
                        )
                    )
                if sends or recvs:
                    instructions.append(
                        CommLaunch(op_id=op_id, sends=sends, recvs=tuple(recvs))
                    )

            tiles = []
            for comp in tiles_by.get((device, step), []):
                key = (comp.seq_index, comp.q_block, comp.head_group)
                tiles.append(
                    Tile(
                        q_slot=q_slot_of(comp),
                        kv_slot=current[comp.kv_input],
                        acc_slot=acc_for(key),
                        seq_index=comp.seq_index,
                        head_group=comp.head_group,
                        q_block=comp.q_block,
                        kv_block=comp.kv_block,
                    )
                )
            if tiles:
                instructions.append(BlockwiseAttention(tuple(tiles)))

            if step < sr - 1:
                if any(
                    isinstance(ins, CommLaunch) and ins.op_id == op_id
                    for ins in instructions
                ):
                    instructions.append(CommWait(op_id=op_id))
                retiring = chunks[(held, head_row)]
                for block in retiring:
                    slot = current.pop(block)
                    if step > 0 or int(
                        slice_home[slice_of[(block.seq_index, block.block_index)]]
                    ) != device:
                        buffers.free("kv", slot)
                current.update(recv_slots)

        # -- epilogue: return partial outputs to their home devices --------
        out_sends: List[SendArg] = []
        for key in sorted(acc_slots):
            seq_index, q_block, head_group = key
            home = int(slice_home[slice_of[(seq_index, q_block)]])
            if home == device:
                continue
            block = DataBlockId(BlockKind.O, seq_index, q_block, head_group)
            out_sends.append(
                SendArg(
                    peer=home,
                    buffer="acc",
                    slot=acc_slots[key],
                    tag=("out", block, device),
                    nbytes=block_set.block_bytes(block),
                )
            )
        out_recvs: List[RecvArg] = []
        staging: List[Tuple[Tuple[int, int, int], int]] = []
        for token_slice in local_slices:
            for head_group in range(attention.head_groups):
                row = head_group % hp
                if row == head_row:
                    continue  # computed locally
                producer = position * hp + row
                key = (token_slice.seq_index, token_slice.block_index, head_group)
                if (producer, key) not in produced:
                    continue  # fully masked output row: nothing to merge
                block = DataBlockId(
                    BlockKind.O,
                    token_slice.seq_index,
                    token_slice.block_index,
                    head_group,
                )
                slot = buffers.alloc("acc")
                staging.append((key, slot))
                out_recvs.append(
                    RecvArg(
                        peer=producer,
                        buffer="acc",
                        slot=slot,
                        tag=("out", block, producer),
                        nbytes=block_set.block_bytes(block),
                    )
                )
        if out_sends or out_recvs:
            op_id = op_base + sr + 1
            instructions.append(
                CommLaunch(
                    op_id=op_id, sends=tuple(out_sends), recvs=tuple(out_recvs)
                )
            )
            instructions.append(CommWait(op_id=op_id))

        merges = tuple(
            MergeArg(src_acc_slot=slot, dst_acc_slot=acc_for(key))
            for key, slot in staging
        )
        finalizes = tuple(
            FinalizeArg(acc_slot=acc_for(key), o_slot=o_slot)
            for key, o_slot in o_slots.items()
        )
        if merges or finalizes:
            instructions.append(
                BlockwiseReduction(merges=merges, finalizes=finalizes)
            )

        return DevicePlan(
            device=device,
            instructions=instructions,
            buffer_sizes=buffers.sizes(),
            local_slices=local_slices,
            o_slots=o_slots,
            q_slots=q_slots,
            kv_slots=kv_slots,
        )
