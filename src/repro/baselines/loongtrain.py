"""LoongTrain baseline (paper baseline (ii), [20]).

LoongTrain parallelizes attention at both the head and sequence
dimensions like TransformerEngine, with two differences the paper
highlights:

* **no variable-length support** — every sequence in the batch is
  padded to the batch's longest sequence (§7.1: "we pad the sequences
  to the longest sequence length in each batch"), so computation and
  communication are charged for padding;
* **double-ring communication** with a configurable inner-ring size.
  In our link-level simulator, any cyclic ring order with positions
  laid out contiguously across machines already crosses machine
  boundaries the minimum number of times, so inner-ring sizes are
  near-equivalent; `plan()` uses the contiguous order and reports the
  inner-ring size only as metadata (the paper likewise reports the best
  size of {1, 2, 4, 8}).

Plans built here are *timing-faithful* but not numerics-comparable to
the unpadded batch (the padded tail computes garbage, exactly as real
padding does); use TE or DCP plans for numeric checks.
"""

from __future__ import annotations

from ..blocks import BatchSpec, BlockSet, generate_blocks
from ..sim.cluster import ClusterSpec
from .transformer_engine import TransformerEnginePlanner

__all__ = ["LoongTrainPlanner", "pad_batch"]


def pad_batch(batch: BatchSpec) -> BatchSpec:
    """Pad every sequence to the longest length in the batch."""
    longest = max(seq.seqlen for seq in batch.sequences)
    return BatchSpec.build([longest] * len(batch.sequences),
                           [seq.mask for seq in batch.sequences])


class LoongTrainPlanner:
    """Head + ring CP on padded inputs (double-ring metadata only)."""

    def __init__(self, head_parallel: int = 0, inner_ring: int = 8) -> None:
        self.head_parallel = head_parallel
        self.inner_ring = inner_ring
        self._inner = TransformerEnginePlanner(head_parallel=head_parallel)

    name = "loongtrain"

    def plan(self, block_set: BlockSet, cluster: ClusterSpec):
        padded_batch = pad_batch(block_set.batch)
        padded_blocks = generate_blocks(
            padded_batch,
            attention=block_set.attention,
            block_size=block_set.block_size,
        )
        plan = self._inner.plan(padded_blocks, cluster)
        plan.meta["planner"] = self.name
        plan.meta["inner_ring"] = self.inner_ring
        plan.meta["padded_tokens"] = padded_blocks.batch.total_tokens
        plan.meta["real_tokens"] = block_set.batch.total_tokens
        return plan
