"""The Megatron-LM (MLM) end-to-end baseline of §7.2.

The paper's baseline is Megatron-LM with its attention module driven by
(enhanced) TransformerEngine context parallelism.  Here that composes
from existing pieces: TE plans the attention, the analytic transformer
cost model prices everything context-independent, and the result is one
full-iteration time with the Fig. 22 decomposition.
"""

from __future__ import annotations

from typing import Optional

from ..blocks import AttentionSpec, BatchSpec, BlockSet, generate_blocks
from ..sim.cluster import ClusterSpec
from ..sim.modelcost import E2EResult, GPT_8B, ModelSpec, e2e_iteration_time
from .transformer_engine import TransformerEnginePlanner

__all__ = ["MegatronBaseline"]


class MegatronBaseline:
    """Full-iteration cost of Megatron + TE context parallelism."""

    name = "mlm"

    def __init__(
        self,
        cluster: ClusterSpec,
        attention: Optional[AttentionSpec] = None,
        model: Optional[ModelSpec] = None,
        block_size: int = 2048,
        head_parallel: int = 0,
    ) -> None:
        self.cluster = cluster
        self.attention = attention or AttentionSpec()
        self.model = model or GPT_8B
        self.block_size = block_size
        self._planner = TransformerEnginePlanner(head_parallel=head_parallel)

    def plan(self, block_set: BlockSet, cluster: Optional[ClusterSpec] = None):
        """Attention plan only (planner-protocol compatibility)."""
        return self._planner.plan(block_set, cluster or self.cluster)

    def iteration(self, batch: BatchSpec) -> E2EResult:
        """Price one training iteration of the 8B GPT on ``batch``."""
        block_set = generate_blocks(
            batch, attention=self.attention, block_size=self.block_size
        )
        plan = self._planner.plan(block_set, self.cluster)
        return e2e_iteration_time(plan, model=self.model, cluster=self.cluster)
