"""Baseline context-parallel planners (RFA, LoongTrain, TE)."""

from .common import (
    contiguous_slice_assignment,
    slices_by_assignment,
    zigzag_slice_assignment,
)
from .flexsp import FlexSPPlanner
from .loongtrain import LoongTrainPlanner, pad_batch
from .megatron import MegatronBaseline
from .ring import RingAttentionPlanner
from .ring_backward import plan_ring_backward, run_ring_forward_backward
from .transformer_engine import TransformerEnginePlanner
from .ulysses import UlyssesPlanner, run_ulysses_forward_backward

__all__ = [
    "FlexSPPlanner",
    "UlyssesPlanner",
    "run_ulysses_forward_backward",
    "RingAttentionPlanner",
    "plan_ring_backward",
    "run_ring_forward_backward",
    "TransformerEnginePlanner",
    "LoongTrainPlanner",
    "MegatronBaseline",
    "pad_batch",
    "contiguous_slice_assignment",
    "zigzag_slice_assignment",
    "slices_by_assignment",
]
