"""FlexSP/ByteScale-style baseline: per-sequence DP-vs-CP selection (§8).

The paper's closest related works, ByteScale [18] and FlexSP [44],
let *different sequences* use different parallelism — short sequences
stay data-parallel on one device, long ones are context-parallelized —
to cut communication.  Crucially, they "do not model fine-grained token
dependencies": their workload model assumes the causal-mask cost, so
placement ignores any sparsity in the actual attention mask.

This planner reproduces that design point:

* each sequence gets a CP degree (a power of two) just large enough
  that its tokens and its *causal-model* FLOPs fit under per-device
  budgets — short sequences get degree 1 (pure DP);
* the sequence's slices are zigzag-placed over the chosen device set
  (the standard causal balancing of Fig. 4), choosing the currently
  least-loaded set;
* every computation block runs where its Q slice lives (ring-attention
  semantics).

The emitted plan reuses DCP's division scheduling and serialization,
so the executor and timing simulator treat all three systems (DCP,
FlexSP-style, static CP) identically; only placement policy differs.
This isolates exactly what the paper claims: sequence-level dynamism
(FlexSP) recovers much of DCP's benefit under causal masks, but
mask-agnostic placement leaves communication and imbalance on the
table under sparse masks.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..blocks import BlockSet
from ..placement.hierarchical import Placement
from ..placement.heuristics import zigzag_chunk_device
from ..scheduling import build_schedule, serialize_schedule
from ..sim.cluster import ClusterSpec

__all__ = ["FlexSPPlanner"]


def _causal_pairs(seqlen: int) -> float:
    """The mask-agnostic workload model: causal-mask (q, k) pairs."""
    return seqlen * (seqlen + 1) / 2.0


class FlexSPPlanner:
    """Sequence-granular dynamic DP/CP without token-dependency modeling."""

    name = "flexsp"

    def __init__(self, token_imbalance: float = 0.3,
                 flop_imbalance: float = 0.3) -> None:
        self.token_imbalance = token_imbalance
        self.flop_imbalance = flop_imbalance

    def plan(self, block_set: BlockSet, cluster: ClusterSpec):
        placement = self.place(block_set, cluster)
        schedule = build_schedule(block_set, placement, num_divisions=4)
        plan = serialize_schedule(schedule)
        plan.meta["planner"] = self.name
        return plan

    # -- placement ---------------------------------------------------------

    def place(self, block_set: BlockSet, cluster: ClusterSpec) -> Placement:
        num_devices = cluster.num_devices
        sequences = block_set.batch.sequences
        total_tokens = sum(seq.seqlen for seq in sequences)
        total_flops = sum(_causal_pairs(seq.seqlen) for seq in sequences)
        token_budget = total_tokens / num_devices * (1 + self.token_imbalance)
        flop_budget = total_flops / num_devices * (1 + self.flop_imbalance)

        token_load = np.zeros(num_devices, dtype=np.float64)
        flop_load = np.zeros(num_devices, dtype=np.float64)
        seq_devices: Dict[int, List[int]] = {}

        order = sorted(
            range(len(sequences)),
            key=lambda i: sequences[i].seqlen,
            reverse=True,
        )
        for seq_index in order:
            seqlen = sequences[seq_index].seqlen
            degree = self._degree_for(seqlen, token_budget, flop_budget,
                                      num_devices)
            devices = self._pick_devices(degree, token_load, flop_load,
                                         cluster)
            seq_devices[seq_index] = devices
            for device in devices:
                token_load[device] += seqlen / degree
                flop_load[device] += _causal_pairs(seqlen) / degree

        slice_device = np.zeros(len(block_set.token_slices), dtype=np.int64)
        chunk_counts: Dict[int, int] = {}
        for token_slice in block_set.token_slices:
            chunk_counts[token_slice.seq_index] = max(
                chunk_counts.get(token_slice.seq_index, 0),
                token_slice.block_index + 1,
            )
        for index, token_slice in enumerate(block_set.token_slices):
            devices = seq_devices[token_slice.seq_index]
            chunk = zigzag_chunk_device(
                token_slice.block_index,
                chunk_counts[token_slice.seq_index],
                len(devices),
            )
            slice_device[index] = devices[chunk]

        slice_lookup = {
            (ts.seq_index, ts.block_index): i
            for i, ts in enumerate(block_set.token_slices)
        }
        comp_device = np.zeros(len(block_set.comp_blocks), dtype=np.int64)
        for index, comp in enumerate(block_set.comp_blocks):
            comp_device[index] = slice_device[
                slice_lookup[(comp.seq_index, comp.q_block)]
            ]

        return Placement(
            block_set=block_set,
            cluster=cluster,
            slice_device=slice_device,
            comp_device=comp_device,
        )

    def _degree_for(
        self,
        seqlen: int,
        token_budget: float,
        flop_budget: float,
        num_devices: int,
    ) -> int:
        """Smallest power-of-two CP degree fitting both budgets."""
        degree = 1
        while degree < num_devices and (
            seqlen / degree > token_budget
            or _causal_pairs(seqlen) / degree > flop_budget
        ):
            degree *= 2
        return min(degree, num_devices)

    def _pick_devices(
        self,
        degree: int,
        token_load: np.ndarray,
        flop_load: np.ndarray,
        cluster: ClusterSpec,
    ) -> List[int]:
        """Least-loaded aligned run of ``degree`` devices.

        Aligned runs keep CP groups inside machines whenever
        ``degree <= devices_per_machine`` — FlexSP's locality rule.
        """
        num_devices = cluster.num_devices
        best_start, best_cost = 0, None
        for start in range(0, num_devices - degree + 1, degree):
            window = slice(start, start + degree)
            cost = (float(flop_load[window].sum()),
                    float(token_load[window].sum()))
            if best_cost is None or cost < best_cost:
                best_start, best_cost = start, cost
        return list(range(best_start, best_start + degree))
