"""RingFlashAttention baseline (paper baseline (i), [49]).

Parallelizes attention only along the sequence dimension: every device
holds one chunk of every sequence and the KV chunks circulate around a
ring of all ``R`` devices, one hop per step, for ``R - 1`` steps.  The
``Ring`` variant uses contiguous chunks; ``ZigZag`` uses the
causal-balancing zigzag placement (Fig. 4).

Communication is *static*: every KV block is forwarded at every step
whether or not the receiving device has unmasked work for it — this is
precisely the redundancy DCP eliminates (paper Fig. 7), and it is fully
expressed here so the timing simulator and traffic accounting charge
for it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


from ..blocks import BlockKind, BlockSet, DataBlockId
from ..scheduling.buffers import BufferManager
from ..scheduling.instructions import (
    BlockwiseAttention,
    BlockwiseReduction,
    CommLaunch,
    CommWait,
    DevicePlan,
    ExecutionPlan,
    FinalizeArg,
    RecvArg,
    SendArg,
    Tile,
)
from ..sim.cluster import ClusterSpec
from .common import (
    contiguous_slice_assignment,
    slices_by_assignment,
    zigzag_slice_assignment,
)

__all__ = ["RingAttentionPlanner"]


class RingAttentionPlanner:
    """RFA with ``Ring`` or ``ZigZag`` input placement."""

    def __init__(self, zigzag: bool = False) -> None:
        self.zigzag = zigzag

    @property
    def name(self) -> str:
        return "rfa_zigzag" if self.zigzag else "rfa_ring"

    def plan(self, block_set: BlockSet, cluster: ClusterSpec) -> ExecutionPlan:
        num_devices = cluster.num_devices
        attention = block_set.attention
        assign = (
            zigzag_slice_assignment(block_set, num_devices)
            if self.zigzag
            else contiguous_slice_assignment(block_set, num_devices)
        )
        device_slices = slices_by_assignment(block_set, assign, num_devices)

        # KV chunk (ordered block ids) originally homed on each device.
        chunks: List[List[DataBlockId]] = []
        for device in range(num_devices):
            chunk = []
            for slice_index in device_slices[device]:
                token_slice = block_set.token_slices[slice_index]
                for head_group in range(attention.head_groups):
                    chunk.append(
                        DataBlockId(
                            BlockKind.KV,
                            token_slice.seq_index,
                            token_slice.block_index,
                            head_group,
                        )
                    )
            chunks.append(chunk)

        # Group computation tiles by (owner device, ring step).
        slice_of = {
            (ts.seq_index, ts.block_index): i
            for i, ts in enumerate(block_set.token_slices)
        }
        tiles_by: Dict[Tuple[int, int], List] = {}
        for comp in block_set.comp_blocks:
            owner = int(assign[slice_of[(comp.seq_index, comp.q_block)]])
            source = int(assign[slice_of[(comp.seq_index, comp.kv_block)]])
            step = (owner - source) % num_devices
            tiles_by.setdefault((owner, step), []).append(comp)

        device_plans: Dict[int, DevicePlan] = {}
        for device in range(num_devices):
            device_plans[device] = self._device_plan(
                device,
                block_set,
                num_devices,
                device_slices[device],
                chunks,
                tiles_by,
            )
        return ExecutionPlan(
            block_set=block_set,
            cluster=cluster,
            device_plans=device_plans,
            meta={"planner": self.name, "num_steps": num_devices},
        )

    def _device_plan(
        self,
        device: int,
        block_set: BlockSet,
        num_devices: int,
        local_slice_ids: List[int],
        chunks: List[List[DataBlockId]],
        tiles_by: Dict[Tuple[int, int], List],
    ) -> DevicePlan:
        attention = block_set.attention
        buffers = BufferManager()
        instructions: List = []
        q_slots: Dict[Tuple[int, int, int], int] = {}
        kv_slots: Dict[Tuple[int, int, int], int] = {}
        o_slots: Dict[Tuple[int, int, int], int] = {}
        acc_slots: Dict[Tuple[int, int, int], int] = {}
        local_slices = [block_set.token_slices[i] for i in local_slice_ids]

        for token_slice in local_slices:
            for head_group in range(attention.head_groups):
                key = (token_slice.seq_index, token_slice.block_index, head_group)
                q_slots[key] = buffers.alloc("q")
                kv_slots[key] = buffers.alloc("kv")
                o_slots[key] = buffers.alloc("o")

        def acc_for(key: Tuple[int, int, int]) -> int:
            if key not in acc_slots:
                acc_slots[key] = buffers.alloc("acc")
            return acc_slots[key]

        # Current location of each circulating KV block on this device.
        current: Dict[DataBlockId, int] = {
            DataBlockId(BlockKind.KV, k[0], k[1], k[2]): slot
            for k, slot in kv_slots.items()
        }
        next_peer = (device + 1) % num_devices
        prev_peer = (device - 1) % num_devices
        op_base = device * 1_000_000

        for step in range(num_devices):
            held = (device - step) % num_devices  # chunk held this step
            incoming = (device - step - 1) % num_devices
            op_id = op_base + step
            recv_slots: Dict[DataBlockId, int] = {}
            if step < num_devices - 1:
                sends = tuple(
                    SendArg(
                        peer=next_peer,
                        buffer="kv",
                        slot=current[block],
                        tag=("ring", step, block),
                        nbytes=block_set.block_bytes(block),
                    )
                    for block in chunks[held]
                )
                recvs = []
                for block in chunks[incoming]:
                    slot = buffers.alloc("kv")
                    recv_slots[block] = slot
                    recvs.append(
                        RecvArg(
                            peer=prev_peer,
                            buffer="kv",
                            slot=slot,
                            tag=("ring", step, block),
                            nbytes=block_set.block_bytes(block),
                        )
                    )
                if sends or recvs:
                    instructions.append(
                        CommLaunch(op_id=op_id, sends=sends, recvs=tuple(recvs))
                    )

            tiles = []
            for comp in tiles_by.get((device, step), []):
                key = (comp.seq_index, comp.q_block, comp.head_group)
                tiles.append(
                    Tile(
                        q_slot=q_slots[key],
                        kv_slot=current[comp.kv_input],
                        acc_slot=acc_for(key),
                        seq_index=comp.seq_index,
                        head_group=comp.head_group,
                        q_block=comp.q_block,
                        kv_block=comp.kv_block,
                    )
                )
            if tiles:
                instructions.append(BlockwiseAttention(tuple(tiles)))

            if step < num_devices - 1:
                if any(
                    isinstance(ins, CommLaunch) and ins.op_id == op_id
                    for ins in instructions
                ):
                    instructions.append(CommWait(op_id=op_id))
                # Retire the chunk just used (unless it is local data).
                if step > 0:
                    for block in chunks[held]:
                        buffers.free("kv", current.pop(block))
                else:
                    for block in chunks[held]:
                        current.pop(block)
                current.update(recv_slots)

        finalizes = tuple(
            FinalizeArg(acc_slot=acc_for(key), o_slot=o_slot)
            for key, o_slot in o_slots.items()
        )
        if finalizes:
            instructions.append(BlockwiseReduction(finalizes=finalizes))

        return DevicePlan(
            device=device,
            instructions=instructions,
            buffer_sizes=buffers.sizes(),
            local_slices=local_slices,
            o_slots=o_slots,
            q_slots=q_slots,
            kv_slots=kv_slots,
            acc_slots=dict(acc_slots),
        )
