"""Shared helpers for baseline context-parallel planners."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..blocks import BlockSet
from ..placement.heuristics import zigzag_chunk_device

__all__ = [
    "contiguous_slice_assignment",
    "zigzag_slice_assignment",
    "slices_by_assignment",
]


def contiguous_slice_assignment(block_set: BlockSet, k: int) -> np.ndarray:
    """Ring placement: each sequence split into ``k`` contiguous chunks.

    Slice ``i`` of a sequence with ``n`` slices goes to ``i * k // n``
    (devices may receive nothing for short sequences).
    """
    out = np.zeros(len(block_set.token_slices), dtype=np.int64)
    counts: Dict[int, int] = {}
    for token_slice in block_set.token_slices:
        counts[token_slice.seq_index] = max(
            counts.get(token_slice.seq_index, 0), token_slice.block_index + 1
        )
    for index, token_slice in enumerate(block_set.token_slices):
        n = counts[token_slice.seq_index]
        out[index] = min(token_slice.block_index * k // n, k - 1)
    return out


def zigzag_slice_assignment(block_set: BlockSet, k: int) -> np.ndarray:
    """ZigZag placement (paper Fig. 4): balances causal computation."""
    out = np.zeros(len(block_set.token_slices), dtype=np.int64)
    counts: Dict[int, int] = {}
    for token_slice in block_set.token_slices:
        counts[token_slice.seq_index] = max(
            counts.get(token_slice.seq_index, 0), token_slice.block_index + 1
        )
    for index, token_slice in enumerate(block_set.token_slices):
        n = counts[token_slice.seq_index]
        out[index] = zigzag_chunk_device(token_slice.block_index, n, k)
    return out


def slices_by_assignment(
    block_set: BlockSet, assignment: np.ndarray, k: int
) -> List[List[int]]:
    """Slice indices per device, ordered (seq, block)."""
    per_device: List[List[int]] = [[] for _ in range(k)]
    order = sorted(
        range(len(block_set.token_slices)),
        key=lambda i: (
            block_set.token_slices[i].seq_index,
            block_set.token_slices[i].block_index,
        ),
    )
    for index in order:
        per_device[int(assignment[index])].append(index)
    return per_device
