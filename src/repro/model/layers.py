"""Numpy neural-net layers with manual backward passes.

Everything operates in float32 on ``[L, d]`` activations (we train with
batch size 1 sequence at a time, like the paper's packed long-context
batches).  Each ``*_forward`` returns ``(output, cache)``; the matching
``*_backward`` consumes the cache and returns input/parameter grads.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "layer_norm_forward",
    "layer_norm_backward",
    "gelu_forward",
    "gelu_backward",
    "linear_forward",
    "linear_backward",
    "softmax_cross_entropy",
]

_EPS = 1e-5


def layer_norm_forward(
    x: np.ndarray, gamma: np.ndarray, beta: np.ndarray
) -> Tuple[np.ndarray, tuple]:
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + _EPS)
    x_hat = (x - mean) * inv_std
    out = x_hat * gamma + beta
    return out.astype(np.float32), (x_hat, inv_std, gamma)


def layer_norm_backward(
    grad_out: np.ndarray, cache: tuple
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    x_hat, inv_std, gamma = cache
    dgamma = (grad_out * x_hat).sum(axis=0)
    dbeta = grad_out.sum(axis=0)
    dx_hat = grad_out * gamma
    dx = (
        dx_hat
        - dx_hat.mean(axis=-1, keepdims=True)
        - x_hat * (dx_hat * x_hat).mean(axis=-1, keepdims=True)
    ) * inv_std
    return dx.astype(np.float32), dgamma.astype(np.float32), dbeta.astype(np.float32)


def gelu_forward(x: np.ndarray) -> Tuple[np.ndarray, tuple]:
    """tanh-approximated GELU."""
    c = np.float32(np.sqrt(2.0 / np.pi))
    u = c * (x + 0.044715 * x**3)
    t = np.tanh(u)
    out = 0.5 * x * (1.0 + t)
    return out.astype(np.float32), (x, t)


def gelu_backward(grad_out: np.ndarray, cache: tuple) -> np.ndarray:
    x, t = cache
    c = np.float32(np.sqrt(2.0 / np.pi))
    du = c * (1.0 + 3 * 0.044715 * x**2)
    dt = (1.0 - t**2) * du
    grad = 0.5 * (1.0 + t) + 0.5 * x * dt
    return (grad_out * grad).astype(np.float32)


def linear_forward(x: np.ndarray, weight: np.ndarray) -> Tuple[np.ndarray, tuple]:
    return (x @ weight).astype(np.float32), (x, weight)


def linear_backward(
    grad_out: np.ndarray, cache: tuple
) -> Tuple[np.ndarray, np.ndarray]:
    x, weight = cache
    dx = grad_out @ weight.T
    dweight = x.T @ grad_out
    return dx.astype(np.float32), dweight.astype(np.float32)


def softmax_cross_entropy(
    logits: np.ndarray, targets: np.ndarray
) -> Tuple[float, np.ndarray]:
    """Mean next-token cross-entropy and its logit gradient.

    ``logits``: ``[L, vocab]``; ``targets``: ``[L]`` integer ids.
    """
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    n = len(targets)
    loss = -float(log_probs[np.arange(n), targets].mean())
    grad = np.exp(log_probs)
    grad[np.arange(n), targets] -= 1.0
    grad /= n
    return loss, grad.astype(np.float32)
