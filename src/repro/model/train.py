"""Training loop for the loss-curve experiment (paper Fig. 21)."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..masks import CausalMask, MaskSpec
from .attention import AttentionForward
from .gpt import TinyGPT

__all__ = ["generate_corpus", "train"]


def generate_corpus(
    vocab: int, seqlen: int, num_sequences: int, seed: int = 0
) -> np.ndarray:
    """Deterministic synthetic corpus with learnable local structure.

    Token ``t+1`` depends on token ``t`` through a random affine map
    plus noise, so the loss visibly decreases over a few hundred
    iterations (as in the paper's curves).
    """
    rng = np.random.default_rng(seed)
    mapping = rng.integers(0, vocab, size=vocab)
    data = np.zeros((num_sequences, seqlen), dtype=np.int64)
    for row in range(num_sequences):
        token = rng.integers(0, vocab)
        for col in range(seqlen):
            data[row, col] = token
            if rng.random() < 0.8:
                token = mapping[token]
            else:
                token = rng.integers(0, vocab)
    return data


def train(
    model: TinyGPT,
    corpus: np.ndarray,
    iterations: int,
    mask: Optional[MaskSpec] = None,
    attention_forward: Optional[AttentionForward] = None,
    learning_rate: float = 0.3,
) -> List[float]:
    """Plain SGD over the corpus; returns the per-iteration losses."""
    mask = mask or CausalMask()
    losses: List[float] = []
    num_sequences = corpus.shape[0]
    for iteration in range(iterations):
        tokens = corpus[iteration % num_sequences]
        loss, grads = model.loss_and_grads(
            tokens, mask=mask, attention_forward=attention_forward
        )
        for name, grad in grads.items():
            model.params[name] -= learning_rate * grad
        losses.append(loss)
    return losses
