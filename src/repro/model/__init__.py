"""Numpy GPT with manual backprop (loss-curve experiment)."""

from .attention import (
    attention_forward_backward,
    dense_attention_forward,
    make_distributed_forward,
)
from .gpt import GPTConfig, TinyGPT
from .train import generate_corpus, train

__all__ = [
    "attention_forward_backward",
    "dense_attention_forward",
    "make_distributed_forward",
    "GPTConfig",
    "TinyGPT",
    "generate_corpus",
    "train",
]
