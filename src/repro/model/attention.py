"""Attention forward/backward for the numpy GPT, with pluggable forward.

The forward pass can be swapped between the dense single-device
implementation ("MLM baseline") and a distributed execution through any
planner's plan on the simulated cluster ("DCP" or a baseline).  The
backward pass is always computed densely from cached probabilities —
legitimate because the distributed forward is verified to be
numerically equal to the dense forward (the paper's §7.4 makes the same
argument: DCP does not alter the attention algorithm).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from ..blocks import AttentionSpec, BatchSpec, generate_blocks
from ..masks import MaskSpec
from ..runtime import BatchInputs, SimExecutor

__all__ = [
    "dense_attention_forward",
    "make_distributed_forward",
    "attention_forward_backward",
]

#: Signature of a pluggable attention forward:
#: (q [H, L, D], k [G, L, D], v [G, L, D], mask_spec) -> O [H, L, D]
AttentionForward = Callable[[np.ndarray, np.ndarray, np.ndarray, MaskSpec], np.ndarray]


def dense_attention_forward(
    q: np.ndarray, k: np.ndarray, v: np.ndarray, mask: MaskSpec
) -> np.ndarray:
    """Single-device masked GQA attention (the MLM baseline forward)."""
    from ..runtime.reference import reference_attention

    num_heads = q.shape[0]
    num_groups = k.shape[0]
    seqlen = q.shape[1]
    return reference_attention(
        q, k, v, mask.dense(seqlen), num_heads // num_groups
    )


def make_distributed_forward(
    planner,
    attention_spec: AttentionSpec,
    block_size: int = 32,
) -> AttentionForward:
    """Wrap a planner into an attention forward on the simulated cluster.

    Plans are cached per (seqlen, mask) — repeated iterations over the
    same shape re-plan nothing, mirroring the dataloader's behaviour.
    """
    plan_cache: Dict[Tuple[int, MaskSpec], tuple] = {}

    def forward(
        q: np.ndarray, k: np.ndarray, v: np.ndarray, mask: MaskSpec
    ) -> np.ndarray:
        seqlen = q.shape[1]
        key = (seqlen, mask)
        if key not in plan_cache:
            batch = BatchSpec.build([seqlen], mask)
            block_set = generate_blocks(batch, attention_spec, block_size)
            plan = planner.plan(block_set, getattr(planner, "cluster", None)) \
                if hasattr(planner, "cluster") else planner.plan(block_set)
            plan_cache[key] = (block_set, plan)
        block_set, plan = plan_cache[key]
        executor = SimExecutor(plan)
        executor.load_inputs(BatchInputs(q=[q], k=[k], v=[v]))
        executor.run()
        return executor.gather_outputs()[0]

    return forward


def attention_forward_backward(
    q: np.ndarray,
    k: np.ndarray,
    v: np.ndarray,
    mask: MaskSpec,
    forward_fn: Optional[AttentionForward] = None,
):
    """Forward via ``forward_fn`` (or dense), backward via dense math.

    Returns ``(output, backward)`` where ``backward(dO) -> (dq, dk, dv)``.
    """
    num_heads, seqlen, head_dim = q.shape
    num_groups = k.shape[0]
    per_group = num_heads // num_groups
    scale = np.float32(1.0 / np.sqrt(head_dim))
    dense_mask = mask.dense(seqlen)

    # Cache the probability matrices for the backward pass.
    probs = np.zeros((num_heads, seqlen, seqlen), dtype=np.float32)
    for head in range(num_heads):
        group = head // per_group
        scores = (q[head] @ k[group].T) * scale
        scores = np.where(dense_mask, scores, np.float32(-np.inf))
        row_max = scores.max(axis=1, keepdims=True)
        safe = np.where(np.isfinite(row_max), row_max, np.float32(0.0))
        weights = np.where(dense_mask, np.exp(scores - safe), np.float32(0.0))
        denom = weights.sum(axis=1, keepdims=True)
        probs[head] = weights / np.where(denom > 0, denom, np.float32(1.0))

    if forward_fn is None:
        output = np.einsum("hqk,hkd->hqd", probs.reshape(num_heads, seqlen, seqlen),
                           v[np.arange(num_heads) // per_group]).astype(np.float32)
    else:
        output = forward_fn(q, k, v, mask)

    def backward(grad_out: np.ndarray):
        dq = np.zeros_like(q, dtype=np.float32)
        dk = np.zeros_like(k, dtype=np.float32)
        dv = np.zeros_like(v, dtype=np.float32)
        for head in range(num_heads):
            group = head // per_group
            p = probs[head]
            dv[group] += p.T @ grad_out[head]
            dp = grad_out[head] @ v[group].T
            ds = p * (dp - (dp * p).sum(axis=1, keepdims=True))
            ds *= scale
            dq[head] = ds @ k[group]
            dk[group] += ds.T @ q[head]
        return dq, dk, dv

    return output, backward
