"""A small GPT in pure numpy with manual backpropagation.

Architecturally a miniature of the paper's 8B model: pre-norm
transformer blocks, GQA attention, GELU MLP, learned positional
embeddings, untied LM head.  Used for the loss-curve experiment
(Fig. 21): the same model trains with different attention forwards
(dense "MLM" vs. distributed plans) and the losses must match.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..masks import CausalMask, MaskSpec
from .attention import AttentionForward, attention_forward_backward
from .layers import (
    gelu_backward,
    gelu_forward,
    layer_norm_backward,
    layer_norm_forward,
    linear_backward,
    linear_forward,
    softmax_cross_entropy,
)

__all__ = ["GPTConfig", "TinyGPT"]


@dataclass(frozen=True)
class GPTConfig:
    vocab: int = 128
    d_model: int = 64
    num_layers: int = 2
    num_heads: int = 4
    num_kv_groups: int = 2
    head_dim: int = 16
    d_ff: int = 128
    max_len: int = 512

    def __post_init__(self) -> None:
        if self.num_heads * self.head_dim != self.d_model:
            raise ValueError("d_model must equal num_heads * head_dim")
        if self.num_heads % self.num_kv_groups != 0:
            raise ValueError("heads must divide into KV groups")


class TinyGPT:
    """Decoder-only transformer with explicit parameter dict."""

    def __init__(self, config: GPTConfig, seed: int = 0) -> None:
        self.config = config
        rng = np.random.default_rng(seed)
        c = config

        def init(*shape) -> np.ndarray:
            scale = 1.0 / np.sqrt(shape[0])
            return (rng.standard_normal(shape) * scale).astype(np.float32)

        self.params: Dict[str, np.ndarray] = {
            "tok_emb": init(c.vocab, c.d_model),
            "pos_emb": init(c.max_len, c.d_model),
            "final_gamma": np.ones(c.d_model, dtype=np.float32),
            "final_beta": np.zeros(c.d_model, dtype=np.float32),
            "head": init(c.d_model, c.vocab),
        }
        kv_dim = c.num_kv_groups * c.head_dim
        for layer in range(c.num_layers):
            p = f"l{layer}_"
            self.params[p + "ln1_gamma"] = np.ones(c.d_model, dtype=np.float32)
            self.params[p + "ln1_beta"] = np.zeros(c.d_model, dtype=np.float32)
            self.params[p + "wq"] = init(c.d_model, c.d_model)
            self.params[p + "wk"] = init(c.d_model, kv_dim)
            self.params[p + "wv"] = init(c.d_model, kv_dim)
            self.params[p + "wo"] = init(c.d_model, c.d_model)
            self.params[p + "ln2_gamma"] = np.ones(c.d_model, dtype=np.float32)
            self.params[p + "ln2_beta"] = np.zeros(c.d_model, dtype=np.float32)
            self.params[p + "w1"] = init(c.d_model, c.d_ff)
            self.params[p + "w2"] = init(c.d_ff, c.d_model)

    # -- shape helpers ------------------------------------------------------

    def _split_heads(self, x: np.ndarray, num: int) -> np.ndarray:
        length = x.shape[0]
        return x.reshape(length, num, self.config.head_dim).transpose(1, 0, 2)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        return x.transpose(1, 0, 2).reshape(x.shape[1], -1)

    # -- forward + backward ---------------------------------------------------

    def loss_and_grads(
        self,
        tokens: np.ndarray,
        mask: Optional[MaskSpec] = None,
        attention_forward: Optional[AttentionForward] = None,
    ) -> Tuple[float, Dict[str, np.ndarray]]:
        """Next-token loss and parameter gradients for one sequence."""
        c = self.config
        mask = mask or CausalMask()
        params = self.params
        length = len(tokens) - 1
        inputs, targets = tokens[:-1], tokens[1:]

        x = params["tok_emb"][inputs] + params["pos_emb"][:length]
        x = x.astype(np.float32)
        caches: List[dict] = []

        for layer in range(c.num_layers):
            p = f"l{layer}_"
            cache: dict = {}
            h1, cache["ln1"] = layer_norm_forward(
                x, params[p + "ln1_gamma"], params[p + "ln1_beta"]
            )
            q_flat, cache["wq"] = linear_forward(h1, params[p + "wq"])
            k_flat, cache["wk"] = linear_forward(h1, params[p + "wk"])
            v_flat, cache["wv"] = linear_forward(h1, params[p + "wv"])
            q = self._split_heads(q_flat, c.num_heads)
            k = self._split_heads(k_flat, c.num_kv_groups)
            v = self._split_heads(v_flat, c.num_kv_groups)
            attn_out, attn_backward = attention_forward_backward(
                q, k, v, mask, forward_fn=attention_forward
            )
            cache["attn_backward"] = attn_backward
            merged = self._merge_heads(attn_out)
            proj, cache["wo"] = linear_forward(merged, params[p + "wo"])
            x = x + proj

            h2, cache["ln2"] = layer_norm_forward(
                x, params[p + "ln2_gamma"], params[p + "ln2_beta"]
            )
            up, cache["w1"] = linear_forward(h2, params[p + "w1"])
            act, cache["gelu"] = gelu_forward(up)
            down, cache["w2"] = linear_forward(act, params[p + "w2"])
            x = x + down
            caches.append(cache)

        final, final_cache = layer_norm_forward(
            x, params["final_gamma"], params["final_beta"]
        )
        logits, head_cache = linear_forward(final, params["head"])
        loss, dlogits = softmax_cross_entropy(logits, targets)

        # -- backward ----------------------------------------------------
        grads: Dict[str, np.ndarray] = {}
        dfinal, grads["head"] = linear_backward(dlogits, head_cache)
        dx, grads["final_gamma"], grads["final_beta"] = layer_norm_backward(
            dfinal, final_cache
        )

        for layer in reversed(range(c.num_layers)):
            p = f"l{layer}_"
            cache = caches[layer]
            dact, grads[p + "w2"] = linear_backward(dx, cache["w2"])
            dup = gelu_backward(dact, cache["gelu"])
            dh2, grads[p + "w1"] = linear_backward(dup, cache["w1"])
            dres, grads[p + "ln2_gamma"], grads[p + "ln2_beta"] = (
                layer_norm_backward(dh2, cache["ln2"])
            )
            dx = dx + dres

            dmerged, grads[p + "wo"] = linear_backward(dx, cache["wo"])
            dattn = self._split_heads(dmerged, c.num_heads)
            dq, dk, dv = cache["attn_backward"](dattn)
            dh1_q, grads[p + "wq"] = linear_backward(
                self._merge_heads(dq), cache["wq"]
            )
            dh1_k, grads[p + "wk"] = linear_backward(
                self._merge_heads(dk), cache["wk"]
            )
            dh1_v, grads[p + "wv"] = linear_backward(
                self._merge_heads(dv), cache["wv"]
            )
            dres, grads[p + "ln1_gamma"], grads[p + "ln1_beta"] = (
                layer_norm_backward(dh1_q + dh1_k + dh1_v, cache["ln1"])
            )
            dx = dx + dres

        grads["pos_emb"] = np.zeros_like(params["pos_emb"])
        grads["pos_emb"][:length] = dx
        grads["tok_emb"] = np.zeros_like(params["tok_emb"])
        np.add.at(grads["tok_emb"], inputs, dx)
        return loss, grads
