"""Thread-safe LRU plan cache keyed by batch shape.

Many training runs see repeated batch signatures (same sequence-length
multiset and masks), especially with bucketed batching; replanning is
pure waste since DCP's plan depends only on (lengths, masks, config,
cluster).  The cache is safe because all of those are immutable.

All bookkeeping is guarded by a lock so the cache can sit in front of
the overlap pipeline's concurrent planner workers
(:mod:`repro.pipeline`): lookups, insertions and stats may race freely
from any number of threads.  Planning itself is *not* serialized — a
miss releases the lock while the planner runs.

Duplicated planning work is avoided through *reservations*
(:meth:`PlanCache.reserve`): under one lock acquisition a caller learns
whether the signature is cached (``"hit"``), already being planned by
someone else (``"wait"``, with a future resolving to the plan), or its
own to plan (``"own"``).  Exactly one caller per signature owns the
dispatch, no matter how many threads or pipelines race on it; owners
publish through :meth:`PlanCache.fulfill` or release waiters with
:meth:`PlanCache.abandon`.  Streaming pipelines additionally
:meth:`PlanCache.invalidate` entries whose cluster shape went stale.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import Future
from typing import Callable, Optional, Tuple

from ..blocks import BatchSpec
from ..obs.metrics import MetricsRegistry
from .planner import DCPPlanner

__all__ = ["PlanCache", "PlanAbandoned", "batch_signature"]


class PlanAbandoned(RuntimeError):
    """Raised to waiters when an in-flight plan reservation is dropped."""


def batch_signature(batch: BatchSpec) -> Tuple:
    """Hashable identity of a batch for planning purposes."""
    return tuple((seq.seqlen, seq.mask) for seq in batch.sequences)


class PlanCache:
    """Least-recently-used cache in front of a :class:`DCPPlanner`."""

    def __init__(
        self,
        planner: DCPPlanner,
        capacity: int = 64,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.planner = planner
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._inflight: dict = {}
        self._lock = threading.RLock()
        #: Accounting lives in a metrics registry (``cache.*``); the
        #: historical ``hits``/``misses``/... attributes are read-only
        #: views over it (one accounting truth; see ``repro.obs``).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._hits = self.metrics.counter("cache.hits")
        self._misses = self.metrics.counter("cache.misses")
        self._invalidations = self.metrics.counter("cache.invalidations")
        self._remapped = self.metrics.counter("cache.remapped")
        self._reserve_wait = self.metrics.counter("cache.reserve_wait")
        self._reserve_own = self.metrics.counter("cache.reserve_own")
        self._epoch = 0

    @property
    def hits(self) -> int:
        return self._hits.value

    @property
    def misses(self) -> int:
        return self._misses.value

    @property
    def invalidations(self) -> int:
        return self._invalidations.value

    @property
    def remapped(self) -> int:
        return self._remapped.value

    @property
    def epoch(self) -> int:
        """Monotonic invalidation counter; see :meth:`publish`."""
        with self._lock:
            return self._epoch

    def get(self, key: Tuple):
        """Cached plan under ``key`` or ``None``, counting hit/miss.

        The building block the overlap pipeline consults *before*
        dispatching a planner worker; a hit refreshes LRU recency.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self._hits.inc()
                return cached
            self._misses.inc()
            return None

    def peek(self, key: Tuple):
        """Cached plan under ``key`` or ``None`` — no accounting.

        Neither hit/miss counters nor LRU recency move: the pre-warm
        path (:mod:`repro.service`) probes many predicted signatures
        per epoch, and letting those probes count would dilute the
        hit-rate the demand traffic actually experiences (and promote
        entries no client asked for).
        """
        with self._lock:
            return self._entries.get(key)

    def _insert(self, key: Tuple, plan) -> None:
        """Insert + refresh recency + evict the LRU tail (lock held)."""
        self._entries[key] = plan
        self._entries.move_to_end(key)
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def put(self, key: Tuple, plan) -> None:
        """Insert ``plan`` under ``key``, evicting the LRU tail."""
        with self._lock:
            self._insert(key, plan)

    def reserve(self, key: Tuple, count: bool = True) -> Tuple[str, object, int]:
        """Atomically claim or join planning of ``key``.

        Returns ``(status, payload, epoch)`` where status is one of

        * ``"hit"`` — payload is the cached plan; counts a hit.
        * ``"wait"`` — someone else is planning it; payload is a future
          resolving to the plan.  Counts a miss.
        * ``"own"`` — the caller now owns the dispatch (payload is the
          reservation future) and must eventually :meth:`fulfill`,
          :meth:`publish` or :meth:`abandon` it.  Counts a miss.

        ``count=False`` suppresses the hit/miss/reserve accounting (not
        the claim itself): pre-warm reservations are speculative work
        the service initiated, not demand traffic, and they must not
        skew the hit rate the real clients see.

        ``epoch`` is the invalidation epoch observed under the same
        lock acquisition — the value later publications/abandons must
        present.  Reading it separately would race: an invalidation
        landing between the read and the claim would stamp the
        reservation newer than the caller's epoch, and the caller's own
        publish/abandon would then refuse to touch it, stranding it
        forever.

        The check-cache / check-in-flight / claim sequence happens under
        one lock acquisition, so N threads reserving the same signature
        yield exactly one owner.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                if count:
                    self._hits.inc()
                return ("hit", cached, self._epoch)
            if count:
                self._misses.inc()
            reservation = self._inflight.get(key)
            if reservation is not None:
                if count:
                    self._reserve_wait.inc()
                return ("wait", reservation[0], self._epoch)
            future = Future()
            if count:
                self._reserve_own.inc()
            # Stamped with the creation epoch so late publications can
            # tell "my own cohort's reservation" from one re-claimed
            # after an invalidation (see :meth:`publish`).
            self._inflight[key] = (future, self._epoch)
            return ("own", future, self._epoch)

    def fulfill(self, key: Tuple, plan) -> bool:
        """Publish an owned reservation: insert + wake the waiters.

        Returns False (and inserts nothing) if the reservation was
        invalidated or abandoned in the meantime — a stale plan must not
        re-enter the cache behind an invalidation.
        """
        with self._lock:
            reservation = self._inflight.pop(key, None)
            if reservation is None:
                return False
            self._insert(key, plan)
        future = reservation[0]
        if not future.done():
            future.set_result(plan)
        return True

    def publish(self, key: Tuple, plan, epoch: int) -> bool:
        """Insert ``plan`` only if no invalidation happened since ``epoch``.

        The retry path's publication primitive: a pipeline captures
        ``cache.epoch`` before reserving, and a plan computed across a
        worker respawn may only enter the cache if no
        :meth:`invalidate`/:meth:`clear` ran in between — otherwise a
        stale-shape plan would resurrect behind the invalidation.

        One refinement keeps waiters live: if the key's reservation was
        created at or before ``epoch`` and is *still in flight* despite
        an epoch bump, the invalidations in between did not target this
        key (invalidation always pops matching reservations), so the
        plan is not stale for it and is published anyway — refusing
        would strand the waiters on a future nobody else will resolve.
        A reservation created *after* ``epoch`` belongs to a
        post-invalidation claimant and is never adopted, and an epoch
        mismatch with no surviving reservation is the genuine stale
        case; both publish nothing.
        """
        with self._lock:
            reservation = self._inflight.get(key)
            if reservation is not None:
                future, created = reservation
                if created > epoch:
                    return False  # a newer cohort owns this key now
                del self._inflight[key]
            else:
                future = None
                if epoch != self._epoch:
                    return False
            self._insert(key, plan)
        if future is not None and not future.done():
            future.set_result(plan)
        return True

    def abandon(
        self,
        key: Tuple,
        exc: Optional[BaseException] = None,
        epoch: Optional[int] = None,
    ) -> None:
        """Drop an owned reservation, releasing waiters with ``exc``.

        With ``epoch`` given, only a reservation created at or before
        it is dropped — a failed pre-invalidation worker must not shoot
        down the reservation a post-invalidation claimant now owns.
        """
        with self._lock:
            reservation = self._inflight.get(key)
            if reservation is None:
                return
            future, created = reservation
            if epoch is not None and created > epoch:
                return
            del self._inflight[key]
        if not future.done():
            future.set_exception(exc or PlanAbandoned(f"plan {key!r} abandoned"))

    def invalidate(
        self,
        predicate: Optional[Callable[[Tuple], bool]] = None,
        remap: Optional[Callable[[Tuple, object], Optional[Tuple]]] = None,
    ) -> int:
        """Drop entries (and in-flight reservations) matching ``predicate``.

        ``None`` drops everything.  Waiters on invalidated reservations
        are released with :class:`PlanAbandoned` so they can re-plan
        against the new state instead of deadlocking on a plan that will
        never be published.  Returns the number of cached entries
        dropped (in-flight drops are not counted: no plan existed yet).

        ``remap`` is the delta re-planner's rescue hook: called as
        ``remap(key, plan)`` for every matching cached entry, it may
        return ``(new_key, new_plan)`` to re-key the entry (re-inserted
        most-recently-used) instead of dropping it — how plans that
        survive a cluster-shape change keep serving recurring batch
        signatures.  A ``None`` return drops the entry as usual.  The
        hook runs under the cache lock and must not call back into the
        cache.  In-flight reservations are never remapped — no plan
        exists yet.
        """
        with self._lock:
            stale_keys = [
                key for key in self._entries
                if predicate is None or predicate(key)
            ]
            dropped = 0
            for key in stale_keys:
                remapped = (
                    remap(key, self._entries[key])
                    if remap is not None
                    else None
                )
                del self._entries[key]
                if remapped is not None:
                    new_key, new_plan = remapped
                    self._insert(new_key, new_plan)
                    self._remapped.inc()
                else:
                    dropped += 1
            stale_inflight = [
                (key, reservation[0])
                for key, reservation in self._inflight.items()
                if predicate is None or predicate(key)
            ]
            for key, _future in stale_inflight:
                del self._inflight[key]
            self._invalidations.inc(dropped)
            self._epoch += 1
        for key, future in stale_inflight:
            if not future.done():
                future.set_exception(
                    PlanAbandoned(f"plan {key!r} invalidated")
                )
        return dropped

    def plan_batch(self, batch: BatchSpec):
        key = batch_signature(batch)
        cached = self.get(key)
        if cached is not None:
            cached.meta["plan_cache"] = self.stats()
            return cached
        plan = self.planner.plan_batch(batch)  # outside the lock: slow
        self.put(key, plan)
        plan.meta["plan_cache"] = self.stats()
        return plan

    def stats(self) -> dict:
        """Cache effectiveness counters for benchmark reports.

        Included in every returned plan's ``meta["plan_cache"]`` so the
        planner-overlap and e2e benchmarks can report hit rates.
        """
        with self._lock:
            hits = self._hits.value
            misses = self._misses.value
            lookups = hits + misses
            return {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / lookups if lookups else 0.0,
                "size": len(self._entries),
                "capacity": self.capacity,
                "invalidations": self._invalidations.value,
                "remapped": self._remapped.value,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            inflight = list(self._inflight.items())
            self._inflight.clear()
            self._hits.reset()
            self._misses.reset()
            self._invalidations.reset()
            self._remapped.reset()
            self._reserve_wait.reset()
            self._reserve_own.reset()
            self._epoch += 1
        for key, (future, _created) in inflight:
            if not future.done():
                future.set_exception(PlanAbandoned(f"plan {key!r} cleared"))
