"""Thread-safe LRU plan cache keyed by batch shape.

Many training runs see repeated batch signatures (same sequence-length
multiset and masks), especially with bucketed batching; replanning is
pure waste since DCP's plan depends only on (lengths, masks, config,
cluster).  The cache is safe because all of those are immutable.

All bookkeeping is guarded by a lock so the cache can sit in front of
the overlap pipeline's concurrent planner workers
(:mod:`repro.pipeline`): lookups, insertions and stats may race freely
from any number of threads.  Planning itself is *not* serialized — a
miss releases the lock while the planner runs, so two threads that miss
on the same signature may both plan it (the second insert wins; both
plans are valid and identical by construction).  The pipeline avoids
even that duplicated work by de-duplicating in-flight signatures before
dispatching a worker.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional, Tuple

from ..blocks import BatchSpec
from .planner import DCPPlanner

__all__ = ["PlanCache", "batch_signature"]


def batch_signature(batch: BatchSpec) -> Tuple:
    """Hashable identity of a batch for planning purposes."""
    return tuple((seq.seqlen, seq.mask) for seq in batch.sequences)


class PlanCache:
    """Least-recently-used cache in front of a :class:`DCPPlanner`."""

    def __init__(self, planner: DCPPlanner, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.planner = planner
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple):
        """Cached plan under ``key`` or ``None``, counting hit/miss.

        The building block the overlap pipeline consults *before*
        dispatching a planner worker; a hit refreshes LRU recency.
        """
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
            self.misses += 1
            return None

    def put(self, key: Tuple, plan) -> None:
        """Insert ``plan`` under ``key``, evicting the LRU tail."""
        with self._lock:
            self._entries[key] = plan
            self._entries.move_to_end(key)
            if len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def plan_batch(self, batch: BatchSpec):
        key = batch_signature(batch)
        cached = self.get(key)
        if cached is not None:
            cached.meta["plan_cache"] = self.stats()
            return cached
        plan = self.planner.plan_batch(batch)  # outside the lock: slow
        self.put(key, plan)
        plan.meta["plan_cache"] = self.stats()
        return plan

    def stats(self) -> dict:
        """Cache effectiveness counters for benchmark reports.

        Included in every returned plan's ``meta["plan_cache"]`` so the
        planner-overlap and e2e benchmarks can report hit rates.
        """
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "size": len(self._entries),
                "capacity": self.capacity,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
