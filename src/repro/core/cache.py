"""LRU plan cache keyed by batch shape.

Many training runs see repeated batch signatures (same sequence-length
multiset and masks), especially with bucketed batching; replanning is
pure waste since DCP's plan depends only on (lengths, masks, config,
cluster).  The cache is safe because all of those are immutable.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from ..blocks import BatchSpec
from .planner import DCPPlanner

__all__ = ["PlanCache", "batch_signature"]


def batch_signature(batch: BatchSpec) -> Tuple:
    """Hashable identity of a batch for planning purposes."""
    return tuple((seq.seqlen, seq.mask) for seq in batch.sequences)


class PlanCache:
    """Least-recently-used cache in front of a :class:`DCPPlanner`."""

    def __init__(self, planner: DCPPlanner, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.planner = planner
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def plan_batch(self, batch: BatchSpec):
        key = batch_signature(batch)
        cached = self._entries.get(key)
        if cached is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            cached.meta["plan_cache"] = self.stats()
            return cached
        self.misses += 1
        plan = self.planner.plan_batch(batch)
        self._entries[key] = plan
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        plan.meta["plan_cache"] = self.stats()
        return plan

    def stats(self) -> dict:
        """Cache effectiveness counters for benchmark reports.

        Included in every returned plan's ``meta["plan_cache"]`` so the
        planner-overlap and e2e benchmarks can report hit rates.
        """
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / lookups if lookups else 0.0,
            "size": len(self._entries),
            "capacity": self.capacity,
        }

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
