"""DCP configuration: the paper's hyper-parameters in one place."""

from __future__ import annotations

from dataclasses import dataclass

from ..placement.hierarchical import PlacementConfig

__all__ = ["DCPConfig"]


@dataclass(frozen=True)
class DCPConfig:
    """Hyper-parameters of the DCP planner (paper §7.1).

    Attributes
    ----------
    block_size:
        Token granularity ``B`` of block partitioning (the paper
        searches {512, 1024, 2048, 4096}).
    num_divisions:
        Number of computation/communication divisions ``T`` per batch
        (the paper fixes 4).
    eps_inter, eps_intra:
        Computation-imbalance tolerance between machines / between
        devices of one machine (paper: 0.4 and 0.1).
    lookahead:
        Planning look-ahead ``kappa`` of the dataloader (§6.1).
    seed, restarts, refine_passes, use_warm_starts:
        Partitioner knobs (see :mod:`repro.hypergraph`).
    """

    block_size: int = 1024
    num_divisions: int = 4
    eps_inter: float = 0.4
    eps_intra: float = 0.1
    eps_data: float = 0.08
    lookahead: int = 2
    seed: int = 0
    restarts: int = 2
    refine_passes: int = 5
    use_warm_starts: bool = True
    #: Division heuristic: "paper" (Listing 3) or "balanced" (an
    #: extension spreading compute across divisions; see
    #: :func:`repro.scheduling.build_schedule`).
    scheduler: str = "paper"

    def __post_init__(self) -> None:
        if self.block_size < 1:
            raise ValueError("block_size must be positive")
        if self.num_divisions < 1:
            raise ValueError("num_divisions must be positive")
        if self.lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        if self.scheduler not in ("paper", "balanced"):
            raise ValueError(f"unknown scheduler {self.scheduler!r}")

    def placement_config(self) -> PlacementConfig:
        return PlacementConfig(
            eps_inter=self.eps_inter,
            eps_intra=self.eps_intra,
            eps_data=self.eps_data,
            seed=self.seed,
            restarts=self.restarts,
            refine_passes=self.refine_passes,
            use_warm_starts=self.use_warm_starts,
        )
