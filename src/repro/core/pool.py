"""Distributed look-ahead planning (paper §6.1).

Two complementary pieces:

* :class:`PlannerPool` — working plumbing: planning jobs for upcoming
  iterations are assigned round-robin to machines, run on a bounded
  worker pool per machine, and published to the cluster through a
  :class:`~repro.core.kvstore.KVStore` exactly as the paper distributes
  plans via Redis.  :class:`DistributedDataloader` iterates
  ``(local_data, plan)`` pairs against the store.

* :func:`simulate_planning_overlap` — the analytic model behind the
  paper's Fig. 18 claim: planning of up to 10 s per batch "can
  perfectly overlap model execution time (> 1 second per iteration)
  ... if planning is parallelized with more than 10 CPU cores".  Given
  per-iteration planning and execution times, machine count and
  cores per machine, it replays the §6.1 pipeline and reports the
  execution stalls caused by late plans.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..blocks import BatchSpec
from ..obs.metrics import MetricsRegistry
from ..scheduling import ExecutionPlan
from .dataloader import LocalData
from .kvstore import KVClient, KVStore
from .planner import DCPPlanner
from .planwire import decode_device_payload, encode_device_payload

__all__ = [
    "PlannerPool",
    "DistributedDataloader",
    "PlanningTimeline",
    "simulate_planning_overlap",
    "min_cores_to_hide_planning",
]


def plan_key(iteration: int) -> str:
    return f"plan/{iteration}"


def skeleton_key(iteration: int) -> str:
    """Shared plan context minus the per-device streams (partial mode)."""
    return f"plan/{iteration}/skeleton"


def device_key(iteration: int, device: int) -> str:
    """One device's instruction stream (partial mode)."""
    return f"plan/{iteration}/device/{device}"


def _device_value(value):
    """A fetched per-device entry, decoded if stored in wire format."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return decode_device_payload(value)[1]
    return value


class PlannerPool:
    """Parallel planning across machines, publishing to a KV store.

    Parameters
    ----------
    planner:
        The planner used for every iteration (any ``plan_batch`` object).
    store:
        Shared KV store; plans land under ``plan/<iteration>``.
    num_machines:
        Planning machines; iteration ``i`` plans on ``i % num_machines``
        (the paper assigns different iterations to different machines).
    cores_per_machine:
        Parallel planner instances per machine.
    partial_plans:
        Publish each plan as a shared skeleton plus one entry per
        device instead of a single monolithic value, so a consumer can
        pull only its own instruction stream (§6.1 wire accounting:
        every device must receive its plan; per-device fetches charge
        ``skeleton + own stream`` rather than the whole plan).
    wire_format:
        Store per-device streams as columnar wire payloads
        (:mod:`repro.core.planwire`) instead of pickled
        :class:`~repro.scheduling.DevicePlan` objects — fewer bytes per
        stream, and the canonical encoding makes the store's
        byte-compare delta detection identity-exact.  Defaults to
        ``partial_plans`` (the monolithic layout keeps the historical
        pickle).  Fetches decode transparently either way.
    retain_iterations:
        Keep at most this many published iterations resident in the
        store: publishing iteration ``i`` deletes every key of
        iterations ``<= i - retain_iterations``.  ``None`` (default)
        keeps the historical grow-forever behavior.  Must exceed the
        consumer's prefetch window plus any re-fetch horizon
        (:attr:`~repro.pipeline.backends.KVPlannerBackend.MAX_FETCH_CURSORS`)
        or a slow consumer finds its plan reclaimed; the unbounded
        growth this bounds is the same disease
        :class:`~repro.core.kvstore.KVStore` ``max_bytes`` treats —
        this variant prunes by pipeline position instead of bytes, so
        an unbounded stream holds O(window) plans no matter their size.
    """

    def __init__(
        self,
        planner: DCPPlanner,
        store: KVStore,
        num_machines: int = 1,
        cores_per_machine: int = 2,
        partial_plans: bool = False,
        wire_format: Optional[bool] = None,
        metrics: Optional[MetricsRegistry] = None,
        retain_iterations: Optional[int] = None,
    ) -> None:
        if num_machines < 1 or cores_per_machine < 1:
            raise ValueError("need at least one machine and one core")
        if retain_iterations is not None and retain_iterations < 1:
            raise ValueError("retain_iterations must be >= 1 (or None)")
        self.retain_iterations = retain_iterations
        self.planner = planner
        self.store = store
        self.num_machines = num_machines
        self.partial_plans = partial_plans
        self.wire_format = (
            partial_plans if wire_format is None else bool(wire_format)
        )
        self.clients = [
            KVClient(store=store, machine=m) for m in range(num_machines)
        ]
        self._pools = [
            ThreadPoolExecutor(max_workers=cores_per_machine)
            for _ in range(num_machines)
        ]
        self._submitted: Dict[int, Future] = {}
        self._intervals: Dict[int, Tuple[float, float]] = {}
        self._generations: Dict[int, int] = {}
        self._publish_locks: Dict[int, threading.Lock] = {}
        self._published: set = set()
        self._lock = threading.Lock()
        #: Accounting lives in a metrics registry (``pool.*``); the
        #: historical attributes below are read-only views over it.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._entries_written = self.metrics.counter(
            "pool.device_entries_written"
        )
        self._entries_unchanged = self.metrics.counter(
            "pool.device_entries_unchanged"
        )
        self._refetch_saved = self.metrics.counter("pool.refetch_saved_bytes")
        self._pruned = self.metrics.counter("pool.pruned_iterations")

    @property
    def device_entries_written(self) -> int:
        """Partial-mode publication accounting: device entries written
        vs skipped (:attr:`device_entries_unchanged`) because the
        republished stream was byte-identical — a delta re-plan that
        left that device's schedule untouched."""
        return self._entries_written.value

    @property
    def device_entries_unchanged(self) -> int:
        return self._entries_unchanged.value

    @property
    def refetch_saved_bytes(self) -> int:
        """Consumer-side bytes *not* moved because a re-fetch presented
        a current version cursor for an unchanged per-device slice."""
        return self._refetch_saved.value

    @property
    def pruned_iterations(self) -> int:
        """Published iterations whose store keys ``retain_iterations``
        reclaimed (monolithic value and any partial-mode entries)."""
        return self._pruned.value

    def submit(
        self,
        iteration: int,
        batch: BatchSpec,
        planner=None,
        replace: bool = False,
    ) -> Future:
        """Queue planning of ``iteration`` on its assigned machine.

        ``planner`` overrides the pool's planner for this job only (the
        streaming pipeline pins a cluster shape this way); ``replace``
        drops any memoized job for the iteration and dispatches a fresh
        one — the respawn path when a planner worker raised or hung.
        """
        machine = iteration % self.num_machines
        client = self.clients[machine]
        job_planner = planner if planner is not None else self.planner

        def job(generation):
            start = time.perf_counter()
            plan = job_planner.plan_batch(batch)
            end = time.perf_counter()
            with self._lock:
                if self._generations.get(iteration) != generation:
                    # Superseded by a replace-resubmission while this
                    # worker ran: a stale plan must not overwrite the
                    # replacement's published bytes.
                    return plan
                publish_lock = self._publish_locks.setdefault(
                    iteration, threading.Lock()
                )
            # Publishing pickles a multi-megabyte plan — keep it off
            # the pool-wide lock so machines publish in parallel.  The
            # per-iteration lock orders this job against any
            # replacement; re-checking the generation under it makes a
            # superseded job refuse even if it lost the race above.
            with publish_lock:
                with self._lock:
                    if self._generations.get(iteration) != generation:
                        return plan
                    self._intervals[iteration] = (start, end)
                self._publish(client, iteration, plan)
            self._prune(iteration)
            return plan

        with self._lock:
            if not replace and iteration in self._submitted:
                return self._submitted[iteration]
            generation = self._generations.get(iteration, 0) + 1
            self._generations[iteration] = generation
            future = self._pools[machine].submit(job, generation)
            self._submitted[iteration] = future
            return future

    def _publish(self, client: KVClient, iteration: int, plan) -> None:
        if not self.partial_plans:
            client.put(plan_key(iteration), plan)
            return
        skeleton = ExecutionPlan(
            block_set=plan.block_set,
            cluster=plan.cluster,
            device_plans={},
            meta={**plan.meta, "devices": sorted(plan.device_plans)},
        )
        client.put(skeleton_key(iteration), skeleton)
        # Conditional per-device writes: a republication (the delta
        # re-plan path) only moves the streams the re-plan changed;
        # untouched devices keep their version, so consumers holding a
        # cursor skip them on re-fetch too.  In wire format the stored
        # value is the canonical columnar payload, so the store's
        # byte-compare sees exactly what plan_diff sees.
        written = unchanged = 0
        for device, device_plan in plan.device_plans.items():
            value = (
                encode_device_payload(device, device_plan)
                if self.wire_format
                else device_plan
            )
            _version, changed = client.put_if_changed(
                device_key(iteration, device), value
            )
            written += int(changed)
            unchanged += int(not changed)
        self._entries_written.inc(written)
        self._entries_unchanged.inc(unchanged)

    def _prune(self, iteration: int) -> None:
        """Reclaim store keys of iterations behind the retention window.

        Out-of-order publication (iterations land on different
        machines) is handled by pruning from the set of *published*
        iterations: a straggler that has not published yet cannot be
        reclaimed, and once it lands a later iteration's horizon sweeps
        it out.
        """
        if self.retain_iterations is None:
            return
        horizon = iteration - self.retain_iterations
        with self._lock:
            self._published.add(iteration)
            stale = sorted(j for j in self._published if j <= horizon)
            for j in stale:
                self._published.discard(j)
        for j in stale:
            self.store.delete(plan_key(j))
            for key in self.store.keys(prefix=f"plan/{j}/"):
                self.store.delete(key)
            self._pruned.inc()

    def fetch(self, iteration: int, machine: int = 0, timeout: float = 60.0):
        """A device-side read of the published plan.

        In partial mode the plan is reassembled from the skeleton plus
        every per-device stream — the full article, for consumers (like
        the pipeline's executor) that need all devices.
        """
        client = self.clients[machine % self.num_machines]
        if not self.partial_plans:
            return client.get(plan_key(iteration), timeout=timeout)
        skeleton = client.get(skeleton_key(iteration), timeout=timeout)
        device_plans = {
            device: _device_value(
                client.get(device_key(iteration, device), timeout=timeout)
            )
            for device in skeleton.meta["devices"]
        }
        return self._assemble(skeleton, device_plans)

    @staticmethod
    def _assemble(skeleton, device_plans) -> ExecutionPlan:
        meta = {k: v for k, v in skeleton.meta.items() if k != "devices"}
        return ExecutionPlan(
            block_set=skeleton.block_set,
            cluster=skeleton.cluster,
            device_plans=device_plans,
            meta=meta,
        )

    def fetch_device(
        self, iteration: int, device: int, timeout: float = 60.0
    ):
        """Only ``device``'s instruction stream (partial mode only)."""
        if not self.partial_plans:
            raise ValueError(
                "per-device fetches need a PlannerPool(partial_plans=True)"
            )
        skeleton = self.clients[0].get(skeleton_key(iteration), timeout=timeout)
        machine = skeleton.cluster.machine_of(device)
        client = self.clients[machine % self.num_machines]
        return _device_value(
            client.get(device_key(iteration, device), timeout=timeout)
        )

    def device_pull(
        self,
        iteration: int,
        timeout: float = 60.0,
        known: Optional[Dict[int, Tuple[int, object]]] = None,
    ) -> Tuple[ExecutionPlan, int, Dict[int, Tuple[int, object]]]:
        """Every device pulls its iteration plan.

        Returns ``(plan, wire_bytes, fetched)`` where ``fetched`` maps
        each device to its ``(version, device_plan)`` — the cursor a
        later re-fetch presents as ``known``.

        Models the §6.1 consumer side: each device, from its own
        machine, reads what it needs from the store — the whole plan in
        monolithic mode, or the shared skeleton plus its own stream in
        partial mode.  Wire bytes follow the :class:`KVClient`
        convention (host-machine reads are local and free); the plan
        returned is assembled from exactly the fetched pieces, so it is
        the genuine round-tripped article.

        ``known`` (partial mode) carries the versions and payloads of a
        previous pull of the same iteration: devices whose published
        stream is unchanged — a delta re-plan republished only what it
        touched — are *not* re-read, their cached payload is reused and
        the bytes that did not move accumulate in
        :attr:`refetch_saved_bytes`.
        """
        # Metadata probe (not charged: the consumers below re-read what
        # they need through accounted per-machine clients).  In partial
        # mode the skeleton alone carries the device list and cluster,
        # so the probe does not touch the per-device streams.
        if self.partial_plans:
            probe = self.clients[0].get(skeleton_key(iteration),
                                        timeout=timeout)
            devices = list(probe.meta["devices"])
        else:
            probe = self.fetch(iteration, timeout=timeout)
            devices = sorted(probe.device_plans)
        cluster = probe.cluster
        consumers: Dict[int, KVClient] = {}

        def client_for(device: int) -> KVClient:
            machine = cluster.machine_of(device)
            if machine not in consumers:
                consumers[machine] = KVClient(store=self.store, machine=machine)
            return consumers[machine]

        fetched: Dict[int, Tuple[int, object]] = {}
        saved = 0
        if not self.partial_plans:
            plan = probe
            for device in devices:
                plan = client_for(device).get(
                    plan_key(iteration), timeout=timeout
                )
        else:
            device_plans = {}
            for device in devices:
                client = client_for(device)
                skeleton = client.get(skeleton_key(iteration), timeout=timeout)
                cursor = (known or {}).get(device)
                value, version, was_fetched = client.get_unless(
                    device_key(iteration, device),
                    version=cursor[0] if cursor is not None else None,
                    timeout=timeout,
                )
                if not was_fetched:
                    # Unchanged since the previous pull: reuse the
                    # cached payload; count what a full re-read would
                    # have moved over this consumer's NIC.
                    value = cursor[1]
                    if not client.is_local:
                        entry = self.store.entry_bytes(
                            device_key(iteration, device)
                        )
                        saved += entry or 0
                else:
                    value = _device_value(value)
                device_plans[device] = value
                fetched[device] = (version, value)
            plan = self._assemble(
                skeleton if devices else probe, device_plans
            )
        if saved:
            self._refetch_saved.inc(saved)
        wire_bytes = sum(c.wire_bytes() for c in consumers.values())
        return plan, wire_bytes, fetched

    def plan_interval(self, iteration: int) -> Tuple[float, float]:
        """(start, end) ``perf_counter`` stamps of a finished plan job."""
        with self._lock:
            interval = self._intervals.get(iteration)
        if interval is None:
            now = time.perf_counter()
            return (now, now)
        return interval

    def release(self, iteration: int) -> None:
        """Drop the per-iteration bookkeeping once the plan is consumed.

        The published plan itself stays in the store; only the futures
        (which pin whole plans), generation counters, publish locks and
        interval stamps are pruned, so an unbounded stream of
        iterations runs in O(1) pool memory.  A superseded worker still
        racing for this iteration refuses to publish regardless: its
        generation no longer matches the (now absent) entry.
        """
        with self._lock:
            self._submitted.pop(iteration, None)
            self._generations.pop(iteration, None)
            self._publish_locks.pop(iteration, None)
            self._intervals.pop(iteration, None)

    def shutdown(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)

    def __enter__(self) -> "PlannerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class DistributedDataloader:
    """§6.1 dataloader on top of a :class:`PlannerPool`.

    A thin wrapper over the streaming pipeline
    (:class:`repro.pipeline.StreamingOverlapPipeline`) with the KV
    backend: ``batches`` may be a materialized list or an unbounded
    generator (a packer still emitting); the pipeline keeps planning
    ``lookahead`` iterations ahead of execution and yields
    ``(local_data, plan)`` like
    :class:`~repro.core.dataloader.DCPDataloader`, but every plan
    travels through the KV store — the full distribution path.  With
    ``events`` (a :class:`~repro.sim.ClusterEventSource`) mid-stream
    device add/remove re-plans the prefetch window online.  Overlap
    measurements are available as :meth:`stats`.
    """

    def __init__(
        self,
        batches: Iterable[BatchSpec],
        pool: PlannerPool,
        lookahead: int = 2,
        events=None,
        per_device_fetch: bool = False,
        replan_mode: str = "delta",
    ) -> None:
        from ..pipeline import KVPlannerBackend, StreamingOverlapPipeline

        if lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        self.pool = pool
        # lookahead == 0 must still go through the store (the planner
        # lives on a planning machine, not on the devices), so the
        # window is pinned to at least one in-flight KV job — matching
        # the historical loop, which always submitted the next job
        # before yielding.  The attribute reports the effective kappa.
        self.lookahead = max(lookahead, 1)
        self._pipeline = StreamingOverlapPipeline(
            batches,
            pool.planner,
            lookahead=self.lookahead,
            backend=KVPlannerBackend(pool, per_device_fetch=per_device_fetch),
            events=events,
            replan_mode=replan_mode,
        )

    def __iter__(self) -> Iterator[Tuple[Dict[int, LocalData], object]]:
        return iter(self._pipeline)

    def stats(self):
        """Measured :class:`~repro.pipeline.OverlapStats` of the run."""
        return self._pipeline.stats()


# -- analytic overlap model ---------------------------------------------------


@dataclass
class PlanningTimeline:
    """Result of replaying the §6.1 planning/execution pipeline."""

    exec_start: List[float]
    exec_end: List[float]
    plan_start: List[float]
    plan_end: List[float]
    stalls: List[float]

    @property
    def total_stall(self) -> float:
        return sum(self.stalls)

    @property
    def total_time(self) -> float:
        return self.exec_end[-1] if self.exec_end else 0.0

    @property
    def stall_fraction(self) -> float:
        if not self.exec_end:
            return 0.0
        busy = sum(e - s for s, e in zip(self.exec_start, self.exec_end))
        return self.total_stall / (self.total_stall + busy)

    def planning_hidden(self, tolerance: float = 1e-9,
                        warmup: int = 1) -> bool:
        """True if no execution stall beyond the first ``warmup``
        iterations.

        Iteration 0 always waits for its own plan, and a cold planner
        pool takes several iterations to fill its pipeline; the paper's
        claim is about steady state.  ``warmup`` controls how much
        ramp-up to forgive (at least 1).
        """
        warmup = max(warmup, 1)
        return all(stall <= tolerance for stall in self.stalls[warmup:])


def simulate_planning_overlap(
    plan_times: Sequence[float],
    exec_times: Sequence[float],
    num_machines: int = 1,
    cores_per_machine: int = 1,
    lookahead: int = 2,
) -> PlanningTimeline:
    """Replay the look-ahead planning pipeline against execution.

    Planning of iteration ``i`` runs on machine ``i % num_machines``,
    which processes at most ``cores_per_machine`` plans concurrently.
    Planning for an iteration may begin once the window allows it (the
    dataloader prefetches ``lookahead`` iterations beyond the one
    currently executing, so job ``i`` becomes available when iteration
    ``i - lookahead - 1`` starts executing; the first ``lookahead + 1``
    jobs are available at time zero).  Execution of iteration ``i``
    starts at ``max(end of i-1, plan i done)``; the difference is the
    stall the paper's design must avoid.
    """
    if len(plan_times) != len(exec_times):
        raise ValueError("need matching plan and exec time lists")
    if num_machines < 1 or cores_per_machine < 1:
        raise ValueError("need at least one machine and one core")
    if lookahead < 0:
        raise ValueError("lookahead must be non-negative")
    n = len(plan_times)
    if n == 0:
        return PlanningTimeline([], [], [], [], [])

    available = [0.0] * n  # when the job may start (window gate)
    plan_start = [0.0] * n
    plan_end = [0.0] * n
    exec_start = [0.0] * n
    exec_end = [0.0] * n
    stalls = [0.0] * n
    # Per-machine core free times.
    cores: List[List[float]] = [
        [0.0] * cores_per_machine for _ in range(num_machines)
    ]

    def run_plan(i: int) -> None:
        machine = cores[i % num_machines]
        core = min(range(len(machine)), key=machine.__getitem__)
        plan_start[i] = max(machine[core], available[i])
        plan_end[i] = plan_start[i] + plan_times[i]
        machine[core] = plan_end[i]

    for i in range(min(lookahead + 1, n)):
        available[i] = 0.0
        run_plan(i)

    for i in range(n):
        plan_ready = plan_end[i]
        prev_end = exec_end[i - 1] if i > 0 else 0.0
        exec_start[i] = max(prev_end, plan_ready)
        stalls[i] = exec_start[i] - prev_end
        exec_end[i] = exec_start[i] + exec_times[i]
        # Starting iteration i opens the window for job i + lookahead + 1.
        nxt = i + lookahead + 1
        if nxt < n:
            available[nxt] = exec_start[i]
            run_plan(nxt)

    return PlanningTimeline(
        exec_start=exec_start,
        exec_end=exec_end,
        plan_start=plan_start,
        plan_end=plan_end,
        stalls=stalls,
    )


def min_cores_to_hide_planning(
    plan_times: Sequence[float],
    exec_times: Sequence[float],
    num_machines: int = 1,
    lookahead: int = 2,
    max_cores: int = 128,
    warmup: Optional[int] = None,
) -> Optional[int]:
    """Smallest cores-per-machine hiding all steady-state planning.

    ``warmup`` iterations of ramp-up stall are forgiven (default:
    ``2 * (lookahead + 1)``, enough for the pipeline to fill from a
    cold start).  Returns ``None`` if even ``max_cores`` cannot hide it
    (planning of a single batch longer than ``lookahead`` iterations of
    execution can never be hidden, no matter the parallelism).
    """
    if warmup is None:
        warmup = 2 * (lookahead + 1)
    for cores in itertools.takewhile(
        lambda c: c <= max_cores, itertools.count(1)
    ):
        timeline = simulate_planning_overlap(
            plan_times,
            exec_times,
            num_machines=num_machines,
            cores_per_machine=cores,
            lookahead=lookahead,
        )
        if timeline.planning_hidden(warmup=warmup):
            return cores
    return None
