"""Distributed look-ahead planning (paper §6.1).

Two complementary pieces:

* :class:`PlannerPool` — working plumbing: planning jobs for upcoming
  iterations are assigned round-robin to machines, run on a bounded
  worker pool per machine, and published to the cluster through a
  :class:`~repro.core.kvstore.KVStore` exactly as the paper distributes
  plans via Redis.  :class:`DistributedDataloader` iterates
  ``(local_data, plan)`` pairs against the store.

* :func:`simulate_planning_overlap` — the analytic model behind the
  paper's Fig. 18 claim: planning of up to 10 s per batch "can
  perfectly overlap model execution time (> 1 second per iteration)
  ... if planning is parallelized with more than 10 CPU cores".  Given
  per-iteration planning and execution times, machine count and
  cores per machine, it replays the §6.1 pipeline and reports the
  execution stalls caused by late plans.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..blocks import BatchSpec
from .dataloader import LocalData, _local_data
from .kvstore import KVClient, KVStore
from .planner import DCPPlanner

__all__ = [
    "PlannerPool",
    "DistributedDataloader",
    "PlanningTimeline",
    "simulate_planning_overlap",
    "min_cores_to_hide_planning",
]


def plan_key(iteration: int) -> str:
    return f"plan/{iteration}"


class PlannerPool:
    """Parallel planning across machines, publishing to a KV store.

    Parameters
    ----------
    planner:
        The planner used for every iteration (any ``plan_batch`` object).
    store:
        Shared KV store; plans land under ``plan/<iteration>``.
    num_machines:
        Planning machines; iteration ``i`` plans on ``i % num_machines``
        (the paper assigns different iterations to different machines).
    cores_per_machine:
        Parallel planner instances per machine.
    """

    def __init__(
        self,
        planner: DCPPlanner,
        store: KVStore,
        num_machines: int = 1,
        cores_per_machine: int = 2,
    ) -> None:
        if num_machines < 1 or cores_per_machine < 1:
            raise ValueError("need at least one machine and one core")
        self.planner = planner
        self.store = store
        self.num_machines = num_machines
        self.clients = [
            KVClient(store=store, machine=m) for m in range(num_machines)
        ]
        self._pools = [
            ThreadPoolExecutor(max_workers=cores_per_machine)
            for _ in range(num_machines)
        ]
        self._submitted: Dict[int, Future] = {}
        self._intervals: Dict[int, Tuple[float, float]] = {}
        self._lock = threading.Lock()

    def submit(self, iteration: int, batch: BatchSpec) -> Future:
        """Queue planning of ``iteration`` on its assigned machine."""
        machine = iteration % self.num_machines
        client = self.clients[machine]

        def job():
            start = time.perf_counter()
            plan = self.planner.plan_batch(batch)
            end = time.perf_counter()
            with self._lock:
                self._intervals[iteration] = (start, end)
            client.put(plan_key(iteration), plan)
            return plan

        with self._lock:
            if iteration in self._submitted:
                return self._submitted[iteration]
            future = self._pools[machine].submit(job)
            self._submitted[iteration] = future
            return future

    def fetch(self, iteration: int, machine: int = 0, timeout: float = 60.0):
        """A device-side read of the published plan."""
        return self.clients[machine % self.num_machines].get(
            plan_key(iteration), timeout=timeout
        )

    def plan_interval(self, iteration: int) -> Tuple[float, float]:
        """(start, end) ``perf_counter`` stamps of a finished plan job."""
        with self._lock:
            interval = self._intervals.get(iteration)
        if interval is None:
            now = time.perf_counter()
            return (now, now)
        return interval

    def shutdown(self) -> None:
        for pool in self._pools:
            pool.shutdown(wait=True)

    def __enter__(self) -> "PlannerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()


class DistributedDataloader:
    """§6.1 dataloader on top of a :class:`PlannerPool`.

    A thin wrapper over :class:`repro.pipeline.OverlapPipeline` with the
    KV backend: the pipeline keeps planning ``lookahead`` iterations
    ahead of execution and yields ``(local_data, plan)`` like
    :class:`~repro.core.dataloader.DCPDataloader`, but every plan
    travels through the KV store — the full distribution path.
    Overlap measurements are available as :meth:`stats`.
    """

    def __init__(
        self,
        batches: Iterable[BatchSpec],
        pool: PlannerPool,
        lookahead: int = 2,
    ) -> None:
        from ..pipeline import KVPlannerBackend, OverlapPipeline

        if lookahead < 0:
            raise ValueError("lookahead must be non-negative")
        self.pool = pool
        # lookahead == 0 must still go through the store (the planner
        # lives on a planning machine, not on the devices), so the
        # window is pinned to at least one in-flight KV job — matching
        # the historical loop, which always submitted the next job
        # before yielding.  The attribute reports the effective kappa.
        self.lookahead = max(lookahead, 1)
        self._pipeline = OverlapPipeline(
            batches,
            pool.planner,
            lookahead=self.lookahead,
            backend=KVPlannerBackend(pool),
        )

    def __iter__(self) -> Iterator[Tuple[Dict[int, LocalData], object]]:
        return iter(self._pipeline)

    def stats(self):
        """Measured :class:`~repro.pipeline.OverlapStats` of the run."""
        return self._pipeline.stats()


# -- analytic overlap model ---------------------------------------------------


@dataclass
class PlanningTimeline:
    """Result of replaying the §6.1 planning/execution pipeline."""

    exec_start: List[float]
    exec_end: List[float]
    plan_start: List[float]
    plan_end: List[float]
    stalls: List[float]

    @property
    def total_stall(self) -> float:
        return sum(self.stalls)

    @property
    def total_time(self) -> float:
        return self.exec_end[-1] if self.exec_end else 0.0

    @property
    def stall_fraction(self) -> float:
        if not self.exec_end:
            return 0.0
        busy = sum(e - s for s, e in zip(self.exec_start, self.exec_end))
        return self.total_stall / (self.total_stall + busy)

    def planning_hidden(self, tolerance: float = 1e-9,
                        warmup: int = 1) -> bool:
        """True if no execution stall beyond the first ``warmup``
        iterations.

        Iteration 0 always waits for its own plan, and a cold planner
        pool takes several iterations to fill its pipeline; the paper's
        claim is about steady state.  ``warmup`` controls how much
        ramp-up to forgive (at least 1).
        """
        warmup = max(warmup, 1)
        return all(stall <= tolerance for stall in self.stalls[warmup:])


def simulate_planning_overlap(
    plan_times: Sequence[float],
    exec_times: Sequence[float],
    num_machines: int = 1,
    cores_per_machine: int = 1,
    lookahead: int = 2,
) -> PlanningTimeline:
    """Replay the look-ahead planning pipeline against execution.

    Planning of iteration ``i`` runs on machine ``i % num_machines``,
    which processes at most ``cores_per_machine`` plans concurrently.
    Planning for an iteration may begin once the window allows it (the
    dataloader prefetches ``lookahead`` iterations beyond the one
    currently executing, so job ``i`` becomes available when iteration
    ``i - lookahead - 1`` starts executing; the first ``lookahead + 1``
    jobs are available at time zero).  Execution of iteration ``i``
    starts at ``max(end of i-1, plan i done)``; the difference is the
    stall the paper's design must avoid.
    """
    if len(plan_times) != len(exec_times):
        raise ValueError("need matching plan and exec time lists")
    if num_machines < 1 or cores_per_machine < 1:
        raise ValueError("need at least one machine and one core")
    if lookahead < 0:
        raise ValueError("lookahead must be non-negative")
    n = len(plan_times)
    if n == 0:
        return PlanningTimeline([], [], [], [], [])

    available = [0.0] * n  # when the job may start (window gate)
    plan_start = [0.0] * n
    plan_end = [0.0] * n
    exec_start = [0.0] * n
    exec_end = [0.0] * n
    stalls = [0.0] * n
    # Per-machine core free times.
    cores: List[List[float]] = [
        [0.0] * cores_per_machine for _ in range(num_machines)
    ]

    def run_plan(i: int) -> None:
        machine = cores[i % num_machines]
        core = min(range(len(machine)), key=machine.__getitem__)
        plan_start[i] = max(machine[core], available[i])
        plan_end[i] = plan_start[i] + plan_times[i]
        machine[core] = plan_end[i]

    for i in range(min(lookahead + 1, n)):
        available[i] = 0.0
        run_plan(i)

    for i in range(n):
        plan_ready = plan_end[i]
        prev_end = exec_end[i - 1] if i > 0 else 0.0
        exec_start[i] = max(prev_end, plan_ready)
        stalls[i] = exec_start[i] - prev_end
        exec_end[i] = exec_start[i] + exec_times[i]
        # Starting iteration i opens the window for job i + lookahead + 1.
        nxt = i + lookahead + 1
        if nxt < n:
            available[nxt] = exec_start[i]
            run_plan(nxt)

    return PlanningTimeline(
        exec_start=exec_start,
        exec_end=exec_end,
        plan_start=plan_start,
        plan_end=plan_end,
        stalls=stalls,
    )


def min_cores_to_hide_planning(
    plan_times: Sequence[float],
    exec_times: Sequence[float],
    num_machines: int = 1,
    lookahead: int = 2,
    max_cores: int = 128,
    warmup: Optional[int] = None,
) -> Optional[int]:
    """Smallest cores-per-machine hiding all steady-state planning.

    ``warmup`` iterations of ramp-up stall are forgiven (default:
    ``2 * (lookahead + 1)``, enough for the pipeline to fill from a
    cold start).  Returns ``None`` if even ``max_cores`` cannot hide it
    (planning of a single batch longer than ``lookahead`` iterations of
    execution can never be hidden, no matter the parallelism).
    """
    if warmup is None:
        warmup = 2 * (lookahead + 1)
    for cores in itertools.takewhile(
        lambda c: c <= max_cores, itertools.count(1)
    ):
        timeline = simulate_planning_overlap(
            plan_times,
            exec_times,
            num_machines=num_machines,
            cores_per_machine=cores,
            lookahead=lookahead,
        )
        if timeline.planning_hidden(warmup=warmup):
            return cores
    return None
