"""The DCP planner: block generation -> placement -> schedule -> plan.

One :meth:`DCPPlanner.plan` call performs everything the paper's
planner does for one training batch (§3.1): generate data/computation
blocks from sequence lengths and masks, optimize their placement with
hierarchical hypergraph partitioning, schedule divisions, and serialize
the per-device instruction streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from ..blocks import AttentionSpec, BatchSpec, BlockSet, generate_blocks
from ..hypergraph import COUNTERS as _REFINE_COUNTERS
from ..obs.metrics import MetricsRegistry
from ..obs.trace import span as _span
from ..placement import Placement, place_blocks
from ..scheduling import ExecutionPlan, build_schedule, serialize_schedule
from ..sim.cluster import ClusterSpec
from .config import DCPConfig

__all__ = ["DCPPlanner", "PlanningStats"]


@dataclass
class PlanningStats:
    """Wall-clock breakdown of one planning run (Fig. 18).

    Besides the per-stage timings, per-stage work counters make perf
    regressions visible in the fig18/fig22 benchmark output: the size
    of the placement hypergraph and how many moves / batched gain
    evaluations refinement spent on it.
    """

    block_generation: float = 0.0
    placement: float = 0.0
    scheduling: float = 0.0
    num_vertices: int = 0
    num_edges: int = 0
    refine_moves: int = 0
    gain_evals: int = 0

    @property
    def total(self) -> float:
        return self.block_generation + self.placement + self.scheduling

    def as_dict(self) -> dict:
        return {
            "block_generation_s": self.block_generation,
            "placement_s": self.placement,
            "scheduling_s": self.scheduling,
            "total_s": self.total,
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "refine_moves": self.refine_moves,
            "gain_evals": self.gain_evals,
        }


class DCPPlanner:
    """Produces a fresh parallelization configuration per batch."""

    name = "dcp"

    def __init__(
        self,
        cluster: ClusterSpec,
        attention: Optional[AttentionSpec] = None,
        config: Optional[DCPConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.cluster = cluster
        self.attention = attention or AttentionSpec()
        self.config = config or DCPConfig()
        self.last_stats: Optional[PlanningStats] = None
        self.last_placement: Optional[Placement] = None
        #: Per-stage latency histograms and work counters
        #: (``planner.plan_s``, ``planner.placement_s``, ...) accumulate
        #: here; pass a shared registry to pool several planners onto
        #: one accounting truth (``repro.obs``).
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def plan_batch(
        self,
        batch: BatchSpec,
        cluster: Optional[ClusterSpec] = None,
        warm=None,
    ) -> ExecutionPlan:
        """Plan from raw (sequence lengths, masks).

        ``cluster`` targets the plan at a different cluster shape
        without persisting it — the streaming pipeline re-plans against
        the shape a mid-stream device add/remove event produced while
        the planner's configured :attr:`cluster` stays untouched.
        ``warm`` is a previous placement of the same batch —
        ``(slice_device, comp_device)`` label arrays, typically a prior
        plan's ``meta["placement"]`` — handed to
        :func:`~repro.placement.place_blocks` so an event re-plan
        starts from (or outright adopts) the old placement instead of
        partitioning from scratch.
        """
        with _span("plan_batch", "planner"):
            stats = PlanningStats()
            start = time.perf_counter()
            with _span("generate_blocks", "planner"):
                block_set = generate_blocks(
                    batch,
                    attention=self.attention,
                    block_size=self.config.block_size,
                )
            stats.block_generation = time.perf_counter() - start
            return self._plan_blocks(
                block_set, stats, cluster=cluster, warm=warm
            )

    def plan(
        self,
        block_set: BlockSet,
        cluster: Optional[ClusterSpec] = None,
        warm=None,
    ):
        """Planner-protocol entry point (shared with the baselines).

        When ``cluster`` is given, the plan targets it without
        persisting it: a shared planner instance keeps its configured
        :attr:`cluster` untouched across calls.
        """
        return self._plan_blocks(
            block_set, PlanningStats(), cluster=cluster, warm=warm
        )

    def _plan_blocks(
        self,
        block_set: BlockSet,
        stats: PlanningStats,
        cluster: Optional[ClusterSpec] = None,
        warm=None,
    ):
        cluster = self.cluster if cluster is None else cluster
        _REFINE_COUNTERS.reset()
        start = time.perf_counter()
        with _span("placement", "planner"):
            placement = place_blocks(
                block_set, cluster, self.config.placement_config(), warm=warm
            )
        stats.placement = time.perf_counter() - start
        stats.num_vertices = placement.num_vertices
        stats.num_edges = placement.num_edges
        stats.refine_moves = _REFINE_COUNTERS.moves
        stats.gain_evals = _REFINE_COUNTERS.gain_evals

        start = time.perf_counter()
        with _span("scheduling", "planner"):
            schedule = build_schedule(
                block_set,
                placement,
                num_divisions=self.config.num_divisions,
                strategy=self.config.scheduler,
            )
            plan = serialize_schedule(schedule)
        stats.scheduling = time.perf_counter() - start

        plan.meta["planning_stats"] = stats
        # The placement labels ride with the plan so a later delta
        # re-plan (after a cluster event) can warm-start from them —
        # they are a few KB of int64 next to megabytes of instruction
        # streams, and plan_fingerprint ignores meta entirely.
        plan.meta["placement"] = (
            placement.slice_device,
            placement.comp_device,
        )
        metrics = self.metrics
        metrics.counter("planner.plans").inc()
        metrics.histogram("planner.plan_s").observe(stats.total)
        metrics.histogram("planner.block_generation_s").observe(
            stats.block_generation
        )
        metrics.histogram("planner.placement_s").observe(stats.placement)
        metrics.histogram("planner.scheduling_s").observe(stats.scheduling)
        metrics.counter("planner.refine_moves").inc(stats.refine_moves)
        metrics.counter("planner.gain_evals").inc(stats.gain_evals)
        self.last_stats = stats
        self.last_placement = placement
        return plan
