"""DCP dataloader with look-ahead planning (paper §6.1, Listing 2).

The dataloader pre-fetches sequence-length/mask metadata from the
dataset and plans upcoming iterations on a background thread pool, so
planning overlaps with (simulated) model execution.  Iterating yields
``(local_data, execution_plan)`` pairs exactly like the paper's API:
``local_data`` maps each device to the token slices it will feed its
model replica.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from ..blocks import BatchSpec
from ..scheduling import ExecutionPlan
from .planner import DCPPlanner

__all__ = ["LocalData", "DCPDataloader"]


@dataclass
class LocalData:
    """Model input for one device: its token slices, in order."""

    device: int
    slices: List

    @property
    def tokens(self) -> int:
        return sum(ts.tokens for ts in self.slices)


def _local_data(plan: ExecutionPlan) -> Dict[int, LocalData]:
    return {
        device: LocalData(device=device, slices=list(device_plan.local_slices))
        for device, device_plan in plan.device_plans.items()
    }


class DCPDataloader:
    """Iterate batches with asynchronously pre-planned configurations.

    Parameters
    ----------
    batches:
        Iterable of :class:`BatchSpec` (a dataset already packed into
        batches; see :mod:`repro.data.batching`).
    planner:
        A :class:`DCPPlanner` (or any object with ``plan_batch``).
    lookahead:
        Number of iterations planned ahead (paper's ``kappa``); 0 plans
        synchronously.
    max_workers:
        Planning parallelism (the paper parallelizes planning across
        CPU cores).
    """

    def __init__(
        self,
        batches: Iterable[BatchSpec],
        planner: DCPPlanner,
        lookahead: int = 2,
        max_workers: int = 2,
    ) -> None:
        self.planner = planner
        self.lookahead = lookahead
        self._batches = iter(batches)
        self._pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(max_workers=max_workers) if lookahead > 0 else None
        )
        self._pending: "queue.Queue[Tuple[BatchSpec, Future]]" = queue.Queue()
        self._exhausted = False

    def _refill(self) -> None:
        while not self._exhausted and self._pending.qsize() < self.lookahead + 1:
            try:
                batch = next(self._batches)
            except StopIteration:
                self._exhausted = True
                return
            future = self._pool.submit(self.planner.plan_batch, batch)
            self._pending.put((batch, future))

    def __iter__(self) -> Iterator[Tuple[Dict[int, LocalData], ExecutionPlan]]:
        if self._pool is None:
            for batch in self._batches:
                plan = self.planner.plan_batch(batch)
                yield _local_data(plan), plan
            return
        self._refill()
        while not self._pending.empty():
            _, future = self._pending.get()
            plan = future.result()
            self._refill()
            yield _local_data(plan), plan
        self._pool.shutdown(wait=False)
