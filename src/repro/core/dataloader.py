"""DCP dataloader with look-ahead planning (paper §6.1, Listing 2).

The dataloader pre-fetches sequence-length/mask metadata from the
dataset and plans upcoming iterations on background planner workers, so
planning overlaps with model execution.  Iterating yields
``(local_data, execution_plan)`` pairs exactly like the paper's API:
``local_data`` maps each device to the token slices it will feed its
model replica.

Since PR 2 this is a thin wrapper over the overlap pipeline, which owns
the prefetch window, the worker backends, the plan-cache consult, and
the measured overlap accounting; :meth:`DCPDataloader.stats` exposes
the measurement.  Since PR 3 both materialized batch lists and
unbounded generators (a packer still emitting) route through
:class:`repro.pipeline.StreamingOverlapPipeline`, which also re-plans
online when a :class:`~repro.sim.ClusterEventSource` reports device
add/remove events mid-stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from ..blocks import BatchSpec
from ..scheduling import ExecutionPlan
from .planner import DCPPlanner

__all__ = ["LocalData", "DCPDataloader"]


@dataclass
class LocalData:
    """Model input for one device: its token slices, in order."""

    device: int
    slices: List

    @property
    def tokens(self) -> int:
        return sum(ts.tokens for ts in self.slices)


def _local_data(plan: ExecutionPlan) -> Dict[int, LocalData]:
    return {
        device: LocalData(device=device, slices=list(device_plan.local_slices))
        for device, device_plan in plan.device_plans.items()
    }


class DCPDataloader:
    """Iterate batches with asynchronously pre-planned configurations.

    Parameters
    ----------
    batches:
        Iterable of :class:`BatchSpec` — a materialized list (a dataset
        already packed into batches; see :mod:`repro.data.batching`) or
        a generator that is still emitting (a streaming packer; see
        :func:`repro.data.stream_packed_specs`).  Both route through
        the streaming pipeline, which never needs an upfront length.
    planner:
        A :class:`DCPPlanner` (or any object with ``plan_batch``).
    lookahead:
        Number of iterations planned ahead (paper's ``kappa``); 0 plans
        synchronously.
    max_workers:
        Planning parallelism (the paper parallelizes planning across
        CPU cores).
    backend:
        Worker backend: ``"thread"`` (default) or ``"process"``; see
        :mod:`repro.pipeline.backends`.
    cache:
        Optional :class:`~repro.core.cache.PlanCache` consulted before
        dispatching planner workers.
    events:
        Optional :class:`~repro.sim.ClusterEventSource`; device
        add/remove events invalidate stale cache entries and re-plan
        the in-flight prefetch window against the new cluster shape.
    replan_mode:
        How the window responds to a shape change — ``"delta"``
        (default: re-plan only the affected jobs, warm-started),
        ``"window"`` or ``"scratch"``; see
        :class:`~repro.pipeline.StreamingOverlapPipeline`.
    """

    def __init__(
        self,
        batches: Iterable[BatchSpec],
        planner: DCPPlanner,
        lookahead: int = 2,
        max_workers: int = 2,
        backend: str = "thread",
        cache=None,
        events=None,
        replan_mode: str = "delta",
    ) -> None:
        from ..pipeline import StreamingOverlapPipeline

        self.planner = planner
        self.lookahead = lookahead
        self._pipeline = StreamingOverlapPipeline(
            batches,
            planner,
            lookahead=lookahead,
            max_workers=max_workers,
            backend=backend,
            cache=cache,
            events=events,
            replan_mode=replan_mode,
        )

    def __iter__(self) -> Iterator[Tuple[Dict[int, LocalData], ExecutionPlan]]:
        return iter(self._pipeline)

    def stats(self):
        """Measured :class:`~repro.pipeline.OverlapStats` of the run."""
        return self._pipeline.stats()
