"""Public DCP API: config, planner, dataloader, distributed planning."""

from .autotune import AutotuneResult, BlockSizeScore, autotune_block_size
from .cache import PlanAbandoned, PlanCache, batch_signature
from .config import DCPConfig
from .dataloader import DCPDataloader, LocalData
from .groups import GroupedPlan, plan_with_groups, split_batch_by_workload
from .kvstore import KVClient, KVStore
from .planner import DCPPlanner, PlanningStats
from .planwire import (
    PlanWire,
    PlanWireError,
    decode_device_payload,
    decode_plan,
    encode_device_payload,
    encode_plan,
)
from .pool import (
    DistributedDataloader,
    PlannerPool,
    PlanningTimeline,
    min_cores_to_hide_planning,
    simulate_planning_overlap,
)

__all__ = [
    "DCPConfig",
    "AutotuneResult",
    "BlockSizeScore",
    "autotune_block_size",
    "DCPDataloader",
    "LocalData",
    "DCPPlanner",
    "PlanningStats",
    "GroupedPlan",
    "plan_with_groups",
    "split_batch_by_workload",
    "PlanCache",
    "PlanAbandoned",
    "batch_signature",
    "KVStore",
    "KVClient",
    "PlanWire",
    "PlanWireError",
    "encode_plan",
    "decode_plan",
    "encode_device_payload",
    "decode_device_payload",
    "PlannerPool",
    "DistributedDataloader",
    "PlanningTimeline",
    "simulate_planning_overlap",
    "min_cores_to_hide_planning",
]
