"""In-memory distributed key-value store (the paper's Redis substitute).

DCP distributes execution plans from planning machines to all devices
"via a distributed key-value store (e.g., Redis) which is located in
host memory in one of the machines" (§6.1).  No network is available
here, so this module provides the smallest faithful equivalent: a
thread-safe blocking KV store plus a client view that accounts the
bytes each machine would move to/from the store's host.

The accounting matters for the planner-overlap analysis: serialized
plans are megabytes, and shipping them must not erase the benefit of
parallel planning.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

__all__ = ["KVStore", "KVClient"]


@dataclass
class _Entry:
    payload: bytes
    version: int


class KVStore:
    """Thread-safe blocking key-value store with versioned writes.

    Values are pickled on ``put`` — exactly what crossing a process
    boundary would require — so stored plans are true snapshots, not
    shared mutable objects.
    """

    def __init__(self, host_machine: int = 0) -> None:
        self.host_machine = host_machine
        self._entries: Dict[str, _Entry] = {}
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._bytes_in = 0
        self._bytes_out = 0

    # -- primitives -----------------------------------------------------

    def put(self, key: str, value: Any) -> int:
        """Store ``value`` under ``key``; returns the new version."""
        payload = pickle.dumps(value)
        with self._changed:
            previous = self._entries.get(key)
            version = previous.version + 1 if previous else 1
            self._entries[key] = _Entry(payload=payload, version=version)
            self._bytes_in += len(payload)
            self._changed.notify_all()
            return version

    def put_if_changed(self, key: str, value: Any) -> Tuple[int, bool]:
        """Store ``value`` unless the current payload is byte-identical.

        Returns ``(version, changed)``.  An unchanged write keeps the
        existing entry — same version, no bytes moved — which is what
        lets a re-planned plan republish only the per-device slices the
        re-plan actually touched: consumers holding the old version
        cursor see the unchanged slices as still-fresh
        (:meth:`get_unless`).
        """
        payload = pickle.dumps(value)
        with self._changed:
            previous = self._entries.get(key)
            if previous is not None and previous.payload == payload:
                return previous.version, False
            version = previous.version + 1 if previous else 1
            self._entries[key] = _Entry(payload=payload, version=version)
            self._bytes_in += len(payload)
            self._changed.notify_all()
            return version, True

    def get(self, key: str, timeout: Optional[float] = None) -> Any:
        """Fetch ``key``, blocking until it exists.

        Raises ``KeyError`` if the timeout expires first.
        """
        with self._changed:
            if not self._changed.wait_for(
                lambda: key in self._entries, timeout=timeout
            ):
                raise KeyError(key)
            entry = self._entries[key]
            self._bytes_out += len(entry.payload)
            return pickle.loads(entry.payload)

    def get_unless(
        self,
        key: str,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[Optional[Any], int, bool]:
        """Conditional fetch: ``(value, version, fetched)``.

        Blocks until ``key`` exists (``KeyError`` on timeout), then —
        if the stored version equals the caller's cursor — returns
        ``(None, version, False)`` without moving the payload: the
        caller's copy is still current.  Otherwise returns the value
        and its version, charging the payload like :meth:`get`.  The
        version cursor is what a re-fetching consumer sends instead of
        re-reading a slice that a partial republish left untouched.
        """
        with self._changed:
            if not self._changed.wait_for(
                lambda: key in self._entries, timeout=timeout
            ):
                raise KeyError(key)
            entry = self._entries[key]
            if version is not None and entry.version == version:
                return None, entry.version, False
            self._bytes_out += len(entry.payload)
            return pickle.loads(entry.payload), entry.version, True

    def try_get(self, key: str) -> Optional[Any]:
        """Fetch ``key`` if present, else ``None`` (non-blocking)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            self._bytes_out += len(entry.payload)
            return pickle.loads(entry.payload)

    def delete(self, key: str) -> bool:
        """Remove ``key``; True if it existed."""
        with self._lock:
            return self._entries.pop(key, None) is not None

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self, prefix: Optional[str] = None):
        """All keys, or only those under ``prefix`` (partial-plan scans)."""
        with self._lock:
            if prefix is None:
                return sorted(self._entries)
            return sorted(k for k in self._entries if k.startswith(prefix))

    def entry_bytes(self, key: str) -> Optional[int]:
        """Serialized payload size of ``key`` (``None`` if absent).

        The §6.1 wire accounting prices consumer fetches by payload
        size; per-device partial plans expose how the full-plan payload
        splits into a shared skeleton plus per-device streams.
        """
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else len(entry.payload)

    def size_bytes(self) -> int:
        """Resident bytes on the host machine."""
        with self._lock:
            return sum(len(e.payload) for e in self._entries.values())

    @property
    def traffic(self) -> Dict[str, int]:
        """Total bytes written to / read from the store."""
        with self._lock:
            return {"in": self._bytes_in, "out": self._bytes_out}


@dataclass
class KVClient:
    """One machine's view of the store, with transfer accounting.

    Reads and writes from the host machine itself are local (no NIC
    traffic); remote machines pay the payload over the wire.  The
    per-client counters let experiments price plan distribution.
    """

    store: KVStore
    machine: int
    bytes_sent: int = 0
    bytes_received: int = 0

    @property
    def is_local(self) -> bool:
        return self.machine == self.store.host_machine

    def put(self, key: str, value: Any) -> int:
        version = self.store.put(key, value)
        if not self.is_local:
            self.bytes_sent += len(pickle.dumps(value))
        return version

    def get(self, key: str, timeout: Optional[float] = None) -> Any:
        value = self.store.get(key, timeout=timeout)
        if not self.is_local:
            self.bytes_received += len(pickle.dumps(value))
        return value

    def put_if_changed(self, key: str, value: Any) -> Tuple[int, bool]:
        """Conditional write; only a changed payload moves over the wire."""
        version, changed = self.store.put_if_changed(key, value)
        if changed and not self.is_local:
            self.bytes_sent += len(pickle.dumps(value))
        return version, changed

    def get_unless(
        self,
        key: str,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[Optional[Any], int, bool]:
        """Conditional fetch; an unchanged entry moves no payload."""
        value, new_version, fetched = self.store.get_unless(
            key, version=version, timeout=timeout
        )
        if fetched and not self.is_local:
            self.bytes_received += len(pickle.dumps(value))
        return value, new_version, fetched

    def wire_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received
