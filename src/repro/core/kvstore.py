"""In-memory distributed key-value store (the paper's Redis substitute).

DCP distributes execution plans from planning machines to all devices
"via a distributed key-value store (e.g., Redis) which is located in
host memory in one of the machines" (§6.1).  No network is available
here, so this module provides the smallest faithful equivalent: a
thread-safe blocking KV store plus a client view that accounts the
bytes each machine would move to/from the store's host.

The accounting matters for the planner-overlap analysis: serialized
plans are megabytes, and shipping them must not erase the benefit of
parallel planning.

Long-running multi-tenant serving (:mod:`repro.service`) adds two
requirements the original store did not have: *bounded residency* and
*honest miss accounting*.  ``max_bytes`` turns the store into an LRU
over payload bytes (reads refresh recency; eviction never touches a
key that a blocked :meth:`KVStore.get` is waiting on), ``ttl_s``
reclaims entries idle longer than the deadline at write time or via
:meth:`KVStore.expire`, and every lookup — including a
:meth:`KVStore.try_get` miss and a timed-out blocking get — lands in
``kv.gets``/``kv.get_s`` with misses broken out in ``kv.get_misses``.

Values are encoded once, on ``put``: arbitrary objects are pickled —
exactly what crossing a process boundary would require, so stored
plans are true snapshots, not shared mutable objects — while
bytes-like values (e.g. columnar plan payloads from
:mod:`repro.core.planwire`) are stored raw and come back as ``bytes``,
paying no pickle framing.  The stored payload is the single source of
truth for all byte accounting: :class:`KVClient` counters and
:meth:`KVStore.entry_bytes` price exactly the bytes the store holds,
never a re-serialization.
"""

from __future__ import annotations

import pickle
import random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from ..obs.metrics import MetricsRegistry
from ..obs.trace import span as _span

__all__ = ["KVStore", "KVClient"]


@dataclass
class _Entry:
    payload: bytes
    version: int
    raw: bool = False
    #: Monotonic stamp of the last write, for TTL reclamation.
    stamp: float = field(default=0.0, compare=False)

    def value(self) -> Any:
        return self.payload if self.raw else pickle.loads(self.payload)


def _encode(value: Any) -> Tuple[bytes, bool]:
    """``(payload, raw)`` — bytes-like values skip the pickle framing."""
    if isinstance(value, (bytes, bytearray, memoryview)):
        return bytes(value), True
    return pickle.dumps(value), False


class KVStore:
    """Thread-safe blocking key-value store with versioned writes.

    ``max_bytes`` bounds the resident payload bytes: every write
    evicts least-recently-used entries (reads refresh recency) until
    the store fits again.  ``ttl_s`` additionally reclaims entries
    whose last write is older than the deadline — checked on every
    write and on explicit :meth:`expire` calls, so a long-running
    multi-tenant service cannot grow the host machine without bound.
    Neither policy ever evicts a key that a blocked :meth:`get` /
    :meth:`get_unless` is currently waiting on: the waiter registered
    before the value arrived, and snatching the payload back between
    the publishing ``put`` and the waiter's wake-up would turn a
    guaranteed delivery into a timeout.
    """

    def __init__(
        self,
        host_machine: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        max_bytes: Optional[int] = None,
        ttl_s: Optional[float] = None,
    ) -> None:
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.host_machine = host_machine
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._size = 0
        #: Keys with a blocked ``get``/``get_unless`` registered on
        #: them (key -> waiter count); eviction skips these.
        self._waiters: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        #: Byte accounting and op-latency histograms (``kv.*``) live in
        #: a metrics registry; :attr:`traffic` is a view over it.  Get
        #: latency includes any blocking wait — that *is* the latency a
        #: consumer stalled on a not-yet-published plan experiences.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._bytes_in = self.metrics.counter("kv.bytes_in")
        self._bytes_out = self.metrics.counter("kv.bytes_out")
        self._puts = self.metrics.counter("kv.puts")
        self._gets = self.metrics.counter("kv.gets")
        self._get_misses = self.metrics.counter("kv.get_misses")
        self._evictions = self.metrics.counter("kv.evictions")
        self._evicted_bytes = self.metrics.counter("kv.evicted_bytes")
        self._put_s = self.metrics.histogram("kv.put_s")
        self._get_s = self.metrics.histogram("kv.get_s")

    # -- bounded-residency machinery (lock held for all of these) --------

    def _insert(self, key: str, entry: _Entry) -> None:
        previous = self._entries.pop(key, None)
        if previous is not None:
            self._size -= len(previous.payload)
        self._entries[key] = entry
        self._size += len(entry.payload)

    def _drop(self, key: str) -> Optional[_Entry]:
        entry = self._entries.pop(key, None)
        if entry is not None:
            self._size -= len(entry.payload)
        return entry

    def _evictable(self, key: str) -> bool:
        return key not in self._waiters

    def _enforce_limits(self, protect: Optional[str] = None) -> None:
        """Apply TTL then LRU-by-bytes, skipping blocked-reader keys.

        ``protect`` (the key a put just wrote) is never evicted by its
        own write: a store too small for one payload should still serve
        that payload to the consumer the write was for.
        """
        evicted = evicted_bytes = 0
        if self.ttl_s is not None:
            deadline = time.monotonic() - self.ttl_s
            stale = [
                key for key, entry in self._entries.items()
                if entry.stamp < deadline
                and key != protect and self._evictable(key)
            ]
            for key in stale:
                entry = self._drop(key)
                evicted += 1
                evicted_bytes += len(entry.payload)
        if self.max_bytes is not None and self._size > self.max_bytes:
            for key in list(self._entries):
                if self._size <= self.max_bytes:
                    break
                if key == protect or not self._evictable(key):
                    continue
                entry = self._drop(key)
                evicted += 1
                evicted_bytes += len(entry.payload)
        if evicted:
            self._evictions.inc(evicted)
            self._evicted_bytes.inc(evicted_bytes)

    def expire(self) -> int:
        """Reclaim TTL-stale entries now; returns the count evicted."""
        if self.ttl_s is None:
            return 0
        before = self._evictions.value
        with self._lock:
            self._enforce_limits()
        return self._evictions.value - before

    def _register_waiter(self, key: str) -> None:
        self._waiters[key] = self._waiters.get(key, 0) + 1

    def _unregister_waiter(self, key: str) -> None:
        count = self._waiters.get(key, 0) - 1
        if count > 0:
            self._waiters[key] = count
        else:
            self._waiters.pop(key, None)

    # -- primitives -----------------------------------------------------
    #
    # The public methods wrap ``*_entry`` variants that also report the
    # stored payload size of the touched entry — what :class:`KVClient`
    # charges to its wire counters, with no re-serialization anywhere.

    def put_entry(self, key: str, value: Any) -> Tuple[int, int]:
        """Store ``value``; returns ``(version, payload_bytes)``."""
        start = time.perf_counter()
        with _span("kv.put", "kv", key=key):
            payload, raw = _encode(value)
            with self._changed:
                previous = self._entries.get(key)
                version = previous.version + 1 if previous else 1
                self._insert(key, _Entry(payload=payload, version=version,
                                         raw=raw, stamp=time.monotonic()))
                self._bytes_in.inc(len(payload))
                self._enforce_limits(protect=key)
                self._changed.notify_all()
        self._puts.inc()
        self._put_s.observe(time.perf_counter() - start)
        return version, len(payload)

    def put(self, key: str, value: Any) -> int:
        """Store ``value`` under ``key``; returns the new version."""
        return self.put_entry(key, value)[0]

    def put_if_changed_entry(
        self, key: str, value: Any
    ) -> Tuple[int, bool, int]:
        """Conditional :meth:`put_entry`: ``(version, changed, bytes)``.

        An unchanged write keeps the existing entry — same version, no
        bytes moved (the reported size is the payload that *would* have
        moved) — which is what lets a re-planned plan republish only
        the per-device slices the re-plan actually touched: consumers
        holding the old version cursor see the unchanged slices as
        still-fresh (:meth:`get_unless`).
        """
        start = time.perf_counter()
        with _span("kv.put_if_changed", "kv", key=key):
            payload, raw = _encode(value)
            with self._changed:
                previous = self._entries.get(key)
                if previous is not None and previous.payload == payload:
                    # Unchanged republish: still activity — refresh the
                    # TTL stamp and LRU recency so a hot entry is not
                    # reclaimed from under its republisher.
                    previous.stamp = time.monotonic()
                    self._entries.move_to_end(key)
                    result = previous.version, False, len(payload)
                else:
                    version = previous.version + 1 if previous else 1
                    self._insert(key, _Entry(
                        payload=payload, version=version, raw=raw,
                        stamp=time.monotonic(),
                    ))
                    self._bytes_in.inc(len(payload))
                    self._enforce_limits(protect=key)
                    self._changed.notify_all()
                    result = version, True, len(payload)
        self._puts.inc()
        self._put_s.observe(time.perf_counter() - start)
        return result

    def put_if_changed(self, key: str, value: Any) -> Tuple[int, bool]:
        """Store ``value`` unless the current payload is byte-identical."""
        version, changed, _nbytes = self.put_if_changed_entry(key, value)
        return version, changed

    def get_entry(
        self, key: str, timeout: Optional[float] = None
    ) -> Tuple[Any, int]:
        """Blocking fetch: ``(value, payload_bytes)``.

        Raises ``KeyError`` if the timeout expires first.
        """
        start = time.perf_counter()
        with _span("kv.get", "kv", key=key):
            with self._changed:
                # Registering the waiter before blocking pins the key
                # against eviction for the whole wait: the publishing
                # put must reach this reader, not the LRU reaper.
                self._register_waiter(key)
                try:
                    if not self._changed.wait_for(
                        lambda: key in self._entries, timeout=timeout
                    ):
                        self._record_get(start, miss=True)
                        raise KeyError(key)
                    entry = self._entries[key]
                    self._entries.move_to_end(key)
                    self._bytes_out.inc(len(entry.payload))
                    result = entry.value(), len(entry.payload)
                finally:
                    self._unregister_waiter(key)
        self._record_get(start)
        return result

    def _record_get(self, start: float, miss: bool = False) -> None:
        """Every lookup — hit, miss or timeout — lands in the metrics.

        Misses used to vanish from ``kv.gets``/``kv.get_s`` entirely,
        which skewed hit rates and latency quantiles exactly under the
        cache-miss-heavy traffic multi-tenant serving produces.
        """
        if miss:
            self._get_misses.inc()
        self._gets.inc()
        self._get_s.observe(time.perf_counter() - start)

    def get(self, key: str, timeout: Optional[float] = None) -> Any:
        """Fetch ``key``, blocking until it exists."""
        return self.get_entry(key, timeout=timeout)[0]

    def get_unless_entry(
        self,
        key: str,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[Optional[Any], int, bool, int]:
        """Conditional fetch: ``(value, version, fetched, payload_bytes)``.

        Blocks until ``key`` exists (``KeyError`` on timeout), then —
        if the stored version equals the caller's cursor — returns
        ``(None, version, False, 0)`` without moving the payload: the
        caller's copy is still current.  Otherwise returns the value
        and its version, charging the payload like :meth:`get`.  The
        version cursor is what a re-fetching consumer sends instead of
        re-reading a slice that a partial republish left untouched.
        """
        start = time.perf_counter()
        with _span("kv.get_unless", "kv", key=key):
            with self._changed:
                self._register_waiter(key)
                try:
                    if not self._changed.wait_for(
                        lambda: key in self._entries, timeout=timeout
                    ):
                        self._record_get(start, miss=True)
                        raise KeyError(key)
                    entry = self._entries[key]
                    self._entries.move_to_end(key)
                    if version is not None and entry.version == version:
                        result = None, entry.version, False, 0
                    else:
                        self._bytes_out.inc(len(entry.payload))
                        result = (
                            entry.value(),
                            entry.version,
                            True,
                            len(entry.payload),
                        )
                finally:
                    self._unregister_waiter(key)
        self._record_get(start)
        return result

    def get_unless(
        self,
        key: str,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[Optional[Any], int, bool]:
        """Conditional fetch: ``(value, version, fetched)``."""
        value, new_version, fetched, _nbytes = self.get_unless_entry(
            key, version=version, timeout=timeout
        )
        return value, new_version, fetched

    def try_get(self, key: str) -> Optional[Any]:
        """Fetch ``key`` if present, else ``None`` (non-blocking).

        A miss is a lookup too: it counts into ``kv.gets`` and
        ``kv.get_misses`` and its latency lands in ``kv.get_s`` (the
        early return used to skip all three, hiding exactly the traffic
        a multi-tenant cache-miss-heavy workload is made of).
        """
        start = time.perf_counter()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._record_get(start, miss=True)
                return None
            self._entries.move_to_end(key)
            self._bytes_out.inc(len(entry.payload))
            value = entry.value()
        self._record_get(start)
        return value

    def delete(self, key: str) -> bool:
        """Remove ``key``; True if it existed."""
        with self._lock:
            return self._drop(key) is not None

    def contains(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def keys(self, prefix: Optional[str] = None):
        """All keys, or only those under ``prefix`` (partial-plan scans)."""
        with self._lock:
            if prefix is None:
                return sorted(self._entries)
            return sorted(k for k in self._entries if k.startswith(prefix))

    def entry_bytes(self, key: str) -> Optional[int]:
        """Serialized payload size of ``key`` (``None`` if absent).

        The §6.1 wire accounting prices consumer fetches by payload
        size; per-device partial plans expose how the full-plan payload
        splits into a shared skeleton plus per-device streams.
        """
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else len(entry.payload)

    def size_bytes(self) -> int:
        """Resident bytes on the host machine."""
        with self._lock:
            return self._size

    @property
    def eviction_stats(self) -> Dict[str, int]:
        """Entries/bytes reclaimed by the ``max_bytes``/TTL policies."""
        return {
            "evictions": self._evictions.value,
            "evicted_bytes": self._evicted_bytes.value,
        }

    @property
    def traffic(self) -> Dict[str, int]:
        """Total bytes written to / read from the store, plus misses.

        A view over the ``kv.bytes_in``/``kv.bytes_out``/
        ``kv.get_misses`` registry counters (see
        :mod:`repro.obs.metrics`).  ``get_misses`` counts lookups —
        :meth:`try_get` on an absent key, blocking gets that timed out
        — not bytes.
        """
        return {
            "in": self._bytes_in.value,
            "out": self._bytes_out.value,
            "get_misses": self._get_misses.value,
        }


@dataclass
class KVClient:
    """One machine's view of the store, with transfer accounting.

    Reads and writes from the host machine itself are local (no NIC
    traffic); remote machines pay the payload over the wire.  The
    per-client counters let experiments price plan distribution.  What
    they charge is the payload the store actually encoded — the bytes
    a Redis client would put on the socket — not a second
    serialization of the value.

    ``max_retries`` > 0 makes every operation retry *transient*
    failures with jittered exponential backoff (base doubling per
    attempt, capped, scaled by a uniform jitter factor so a fleet of
    clients retrying the same outage doesn't re-stampede in phase).
    Transience is duck-typed — any exception carrying a truthy
    ``retryable`` attribute qualifies (the convention of
    :mod:`repro.service.errors`, which this layer must not import) —
    so a dead shard or an injected drop is retried while a genuine
    bug (``TypeError``, ``KeyError``) surfaces on the first throw.
    The default ``max_retries=0`` preserves fail-fast behavior.
    """

    store: KVStore
    machine: int
    bytes_sent: int = 0
    bytes_received: int = 0
    max_retries: int = 0
    backoff_base_s: float = 0.005
    backoff_cap_s: float = 0.25
    backoff_jitter: float = 0.5
    retries: int = 0
    #: Injectable randomness/sleep for deterministic tests.
    rng: Any = None
    sleep: Any = time.sleep

    @property
    def is_local(self) -> bool:
        return self.machine == self.store.host_machine

    def _backoff_s(self, attempt: int) -> float:
        delay = min(self.backoff_cap_s,
                    self.backoff_base_s * (2 ** attempt))
        if self.backoff_jitter > 0:
            rng = self.rng if self.rng is not None else random
            delay *= 1.0 - self.backoff_jitter * rng.random()
        return delay

    def _with_retry(self, op):
        """Run ``op`` with bounded retry on duck-typed transient errors."""
        attempt = 0
        while True:
            try:
                return op()
            except Exception as exc:
                if (not getattr(exc, "retryable", False)
                        or attempt >= self.max_retries):
                    raise
                self.retries += 1
                self.sleep(self._backoff_s(attempt))
                attempt += 1

    def put(self, key: str, value: Any) -> int:
        version, nbytes = self._with_retry(
            lambda: self.store.put_entry(key, value)
        )
        if not self.is_local:
            self.bytes_sent += nbytes
        return version

    def get(self, key: str, timeout: Optional[float] = None) -> Any:
        value, nbytes = self._with_retry(
            lambda: self.store.get_entry(key, timeout=timeout)
        )
        if not self.is_local:
            self.bytes_received += nbytes
        return value

    def put_if_changed(self, key: str, value: Any) -> Tuple[int, bool]:
        """Conditional write; only a changed payload moves over the wire."""
        version, changed, nbytes = self._with_retry(
            lambda: self.store.put_if_changed_entry(key, value)
        )
        if changed and not self.is_local:
            self.bytes_sent += nbytes
        return version, changed

    def get_unless(
        self,
        key: str,
        version: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Tuple[Optional[Any], int, bool]:
        """Conditional fetch; an unchanged entry moves no payload."""
        value, new_version, fetched, nbytes = self._with_retry(
            lambda: self.store.get_unless_entry(
                key, version=version, timeout=timeout
            )
        )
        if fetched and not self.is_local:
            self.bytes_received += nbytes
        return value, new_version, fetched

    def wire_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received
