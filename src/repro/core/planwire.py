"""Columnar wire format for execution plans (zero-copy plan transport).

The hot plan structures have been structure-of-arrays since PR 1 —
instruction streams are flat tuples of small frozen records whose
fields are all integers, buffer-name strings, or block identities.
This module encodes them as exactly that: a tiny self-describing
header, two string/tag tables, and one contiguous integer lane, so a
plan crosses a process or KV boundary as buffer bytes instead of a
pickled object graph.

Why not pickle?  Two reasons the transport layer cares about:

* **Canonical bytes.**  Pickle memoizes shared sub-objects, so the
  bytes of a device plan depend on object identity *across* the
  structures being pickled — two logically identical plans built along
  different code paths serialize differently.  The columnar encoding
  depends only on field values, which is what lets
  :func:`repro.pipeline.plan_fingerprint` compare plans across the
  synchronous path, the process boundary, and the KV store.
* **Cost.**  The integer lane is packed with :mod:`array` into int32
  (int64 only when a value overflows), roughly halving the wire size
  of a plan and making the decode a bulk ``frombytes`` rather than a
  pickle VM replay.

Per-device payload layout (magic ``PWD1``, little-endian)::

    "PWD1" | u8 itemsize (4|8)
    | u32 n_names  | n_names  x (u32 len, utf-8 bytes)   buffer names
    | u32 n_tags   | n_tags   x (u32 len, pickle bytes)  interned tags
    | u64 n_ints   | n_ints   x i32/i64                  integer lane

The integer lane carries, in order: device id, the instruction stream
(opcode + body per instruction), buffer sizes, local token slices, and
the seven slot maps.  Dict-shaped fields are stored sorted by key so
the encoding is canonical; instruction order is preserved exactly.
Communication tags use three encodings: the planner's hot ``("in",
block)`` / ``("out", block, producer)`` tags go columnar (4 and 5 ints)
while anything else — backward-pass and baseline tags — is pickled once
into the deduplicated tag table and referenced by index.

A payload whose plan contains instruction types this module does not
know is framed as a plain pickle under magic ``PWDP`` instead; decode
handles both frames, so exotic plans lose the compaction but keep
working.

Whole plans travel as a :class:`PlanWire`: a pickled context
(``block_set``, ``cluster``, ``meta``) plus the concatenated per-device
payloads and a span table, so a consumer can slice one device's bytes
out of a single contiguous buffer (``device_bytes``) without touching
the rest — the zero-copy half of the shm ring in
:mod:`repro.pipeline.shm`.
"""

from __future__ import annotations

import pickle
import struct
import sys
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple, Union

from ..blocks.data_blocks import BlockKind, DataBlockId, TokenSlice
from ..scheduling.instructions import (
    BackwardTile,
    BlockwiseAttention,
    BlockwiseAttentionBackward,
    BlockwiseCopy,
    BlockwiseGradReduce,
    BlockwiseReduction,
    CommLaunch,
    CommWait,
    CopyArg,
    DevicePlan,
    ExecutionPlan,
    FinalizeArg,
    GradAdd,
    MergeArg,
    RecvArg,
    SendArg,
    Tile,
)

__all__ = [
    "PlanWireError",
    "PlanWire",
    "encode_device_payload",
    "decode_device_payload",
    "encode_plan",
    "decode_plan",
]

DEVICE_MAGIC = b"PWD1"
PICKLE_MAGIC = b"PWDP"
PLAN_MAGIC = b"PWIR"

_OP_ATTENTION = 0
_OP_ATTENTION_BWD = 1
_OP_GRAD_REDUCE = 2
_OP_REDUCTION = 3
_OP_COPY = 4
_OP_COMM_LAUNCH = 5
_OP_COMM_WAIT = 6

_TAG_INTERNED = 0
_TAG_IN = 1
_TAG_OUT = 2

_KIND_CODE = {kind: code for code, kind in enumerate(BlockKind.ALL)}

_INT32_MIN = -(2 ** 31)
_INT32_MAX = 2 ** 31 - 1

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_SPAN = struct.Struct("<qQQ")


class PlanWireError(ValueError):
    """A structure the columnar encoding cannot represent."""


# -- tag classification -------------------------------------------------------


def _columnar_tag(tag) -> Tuple[int, Tuple[int, ...]]:
    """``(tag_code, ints)`` — ints empty means "intern this tag"."""
    if isinstance(tag, tuple):
        if (
            len(tag) == 2
            and tag[0] == "in"
            and isinstance(tag[1], DataBlockId)
        ):
            block = tag[1]
            return _TAG_IN, (
                _KIND_CODE[block.kind],
                block.seq_index,
                block.block_index,
                block.head_group,
            )
        if (
            len(tag) == 3
            and tag[0] == "out"
            and isinstance(tag[1], DataBlockId)
            and type(tag[2]) is int
        ):
            block = tag[1]
            return _TAG_OUT, (
                _KIND_CODE[block.kind],
                block.seq_index,
                block.block_index,
                block.head_group,
                tag[2],
            )
    return _TAG_INTERNED, ()


def _iter_comm_args(device_plan) -> Iterator:
    for ins in device_plan.instructions:
        if isinstance(ins, CommLaunch):
            yield from ins.sends
            yield from ins.recvs


# -- encoding -----------------------------------------------------------------


def _collect_tables(device_plan) -> Tuple[List[str], List[bytes]]:
    """Deterministic name and tag tables for one device plan."""
    names = set(device_plan.buffer_sizes)
    tag_blobs = set()
    for ins in device_plan.instructions:
        if isinstance(ins, BlockwiseGradReduce):
            names.update(add.buffer for add in ins.adds)
        elif isinstance(ins, BlockwiseCopy):
            names.update(copy.buffer for copy in ins.copies)
        elif isinstance(ins, CommLaunch):
            for arg in (*ins.sends, *ins.recvs):
                names.add(arg.buffer)
                code, _ = _columnar_tag(arg.tag)
                if code == _TAG_INTERNED:
                    tag_blobs.add(pickle.dumps(arg.tag, protocol=4))
    if not all(isinstance(name, str) for name in names):
        raise PlanWireError("buffer names must be strings")
    return sorted(names), sorted(tag_blobs)


def _encode_columnar(device: int, device_plan) -> bytes:
    names, tag_blobs = _collect_tables(device_plan)
    name_idx = {name: i for i, name in enumerate(names)}
    tag_idx = {blob: i for i, blob in enumerate(tag_blobs)}

    lane: List[int] = [device, len(device_plan.instructions)]
    push = lane.extend

    def push_comm_arg(arg) -> None:
        code, ints = _columnar_tag(arg.tag)
        push((arg.peer, name_idx[arg.buffer], arg.slot, arg.nbytes, code))
        if code == _TAG_INTERNED:
            lane.append(tag_idx[pickle.dumps(arg.tag, protocol=4)])
        else:
            push(ints)

    for ins in device_plan.instructions:
        if isinstance(ins, BlockwiseAttention):
            push((_OP_ATTENTION, len(ins.tiles)))
            for t in ins.tiles:
                push((t.q_slot, t.kv_slot, t.acc_slot, t.seq_index,
                      t.head_group, t.q_block, t.kv_block))
        elif isinstance(ins, BlockwiseAttentionBackward):
            push((_OP_ATTENTION_BWD, len(ins.tiles)))
            for t in ins.tiles:
                push((t.q_slot, t.kv_slot, t.do_slot, t.dq_slot, t.dkv_slot,
                      t.seq_index, t.head_group, t.q_block, t.kv_block))
        elif isinstance(ins, BlockwiseGradReduce):
            push((_OP_GRAD_REDUCE, len(ins.adds)))
            for add in ins.adds:
                push((name_idx[add.buffer], add.src_slot, add.dst_slot))
        elif isinstance(ins, BlockwiseReduction):
            push((_OP_REDUCTION, len(ins.merges), len(ins.finalizes)))
            for m in ins.merges:
                push((m.src_acc_slot, m.dst_acc_slot))
            for f in ins.finalizes:
                push((f.acc_slot, f.o_slot))
        elif isinstance(ins, BlockwiseCopy):
            push((_OP_COPY, len(ins.copies)))
            for c in ins.copies:
                push((name_idx[c.buffer], c.src_slot, c.dst_slot))
        elif isinstance(ins, CommLaunch):
            push((_OP_COMM_LAUNCH, ins.op_id, len(ins.sends), len(ins.recvs)))
            for arg in ins.sends:
                push_comm_arg(arg)
            for arg in ins.recvs:
                push_comm_arg(arg)
        elif isinstance(ins, CommWait):
            push((_OP_COMM_WAIT, ins.op_id))
        else:
            raise PlanWireError(
                f"unknown instruction type {type(ins).__name__}"
            )

    sizes = sorted(
        (name_idx[name], size)
        for name, size in device_plan.buffer_sizes.items()
    )
    lane.append(len(sizes))
    for idx, size in sizes:
        push((idx, size))

    lane.append(len(device_plan.local_slices))
    for ts in device_plan.local_slices:
        if not isinstance(ts, TokenSlice):
            raise PlanWireError("local slices must be TokenSlice records")
        push((ts.seq_index, ts.block_index, ts.start, ts.stop))

    for slots in _slot_maps(device_plan):
        items = sorted(slots.items())
        lane.append(len(items))
        for (seq, blk, hg), slot in items:
            push((seq, blk, hg, slot))

    lo = min(lane)
    hi = max(lane)
    typecode = "i" if _INT32_MIN <= lo and hi <= _INT32_MAX else "q"
    packed = array(typecode, lane)
    if sys.byteorder != "little":
        packed.byteswap()

    out = bytearray(DEVICE_MAGIC)
    out += struct.pack("<B", packed.itemsize)
    out += _U32.pack(len(names))
    for name in names:
        raw = name.encode("utf-8")
        out += _U32.pack(len(raw))
        out += raw
    out += _U32.pack(len(tag_blobs))
    for blob in tag_blobs:
        out += _U32.pack(len(blob))
        out += blob
    out += _U64.pack(len(lane))
    out += packed.tobytes()
    return bytes(out)


def _slot_maps(device_plan) -> Tuple[Dict, ...]:
    return (
        device_plan.o_slots,
        device_plan.q_slots,
        device_plan.kv_slots,
        device_plan.acc_slots,
        device_plan.do_slots,
        device_plan.dq_slots,
        device_plan.dkv_slots,
    )


def encode_device_payload(device: int, device_plan) -> bytes:
    """Canonical wire bytes of one device's executable stream.

    Columnar when the plan uses only the known instruction set (all
    plan builders in this repository do); a pickle-framed fallback
    otherwise, so third-party instruction types degrade to the old
    behavior instead of failing.
    """
    try:
        return _encode_columnar(device, device_plan)
    except PlanWireError:
        return PICKLE_MAGIC + pickle.dumps(
            (
                device,
                device_plan.instructions,
                sorted(device_plan.buffer_sizes.items()),
                device_plan.local_slices,
                *(sorted(m.items()) for m in _slot_maps(device_plan)),
            ),
            protocol=4,
        )


# -- decoding -----------------------------------------------------------------


class _Reader:
    """Sequential cursor over one payload buffer (no copies)."""

    def __init__(self, data) -> None:
        self.view = memoryview(data)
        self.pos = 0

    def take(self, n: int) -> memoryview:
        chunk = self.view[self.pos:self.pos + n]
        if len(chunk) != n:
            raise PlanWireError("truncated plan payload")
        self.pos += n
        return chunk

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self.take(8))[0]


def decode_device_payload(payload) -> Tuple[int, DevicePlan]:
    """Inverse of :func:`encode_device_payload`: ``(device, DevicePlan)``.

    Accepts ``bytes`` or any buffer (e.g. a ``memoryview`` into a shm
    segment); the integer lane is bulk-converted, nothing else in the
    source buffer is copied byte-by-byte.
    """
    reader = _Reader(payload)
    magic = bytes(reader.take(4))
    if magic == PICKLE_MAGIC:
        (device, instructions, sizes, local_slices, *maps) = pickle.loads(
            reader.view[reader.pos:]
        )
        o, q, kv, acc, do, dq, dkv = (dict(m) for m in maps)
        return device, DevicePlan(
            device=device,
            instructions=instructions,
            buffer_sizes=dict(sizes),
            local_slices=local_slices,
            o_slots=o, q_slots=q, kv_slots=kv, acc_slots=acc,
            do_slots=do, dq_slots=dq, dkv_slots=dkv,
        )
    if magic != DEVICE_MAGIC:
        raise PlanWireError(f"bad device payload magic {magic!r}")

    itemsize = reader.take(1)[0]
    if itemsize not in (4, 8):
        raise PlanWireError(f"bad integer lane itemsize {itemsize}")
    names = [
        str(reader.take(reader.u32()), "utf-8")
        for _ in range(reader.u32())
    ]
    tags = [
        pickle.loads(reader.take(reader.u32()))
        for _ in range(reader.u32())
    ]
    n_ints = reader.u64()
    packed = array("i" if itemsize == 4 else "q")
    packed.frombytes(reader.take(n_ints * itemsize))
    if sys.byteorder != "little":
        packed.byteswap()

    pos = 0

    def take(n: int):
        nonlocal pos
        chunk = packed[pos:pos + n]
        pos += n
        return chunk

    def one() -> int:
        nonlocal pos
        value = packed[pos]
        pos += 1
        return value

    def read_tag():
        code = one()
        if code == _TAG_INTERNED:
            return tags[one()]
        kind = BlockKind.ALL[one()]
        block = DataBlockId(kind, one(), one(), one())
        if code == _TAG_IN:
            return ("in", block)
        if code == _TAG_OUT:
            return ("out", block, one())
        raise PlanWireError(f"bad tag code {code}")

    def read_comm_arg(cls):
        peer = one()
        buffer = names[one()]
        slot = one()
        nbytes = one()
        tag = read_tag()
        return cls(peer=peer, buffer=buffer, slot=slot, tag=tag,
                   nbytes=nbytes)

    device = one()
    instructions: List = []
    for _ in range(one()):
        op = one()
        if op == _OP_ATTENTION:
            instructions.append(BlockwiseAttention(tiles=tuple(
                Tile(*take(7)) for _ in range(one())
            )))
        elif op == _OP_ATTENTION_BWD:
            instructions.append(BlockwiseAttentionBackward(tiles=tuple(
                BackwardTile(*take(9)) for _ in range(one())
            )))
        elif op == _OP_GRAD_REDUCE:
            instructions.append(BlockwiseGradReduce(adds=tuple(
                GradAdd(names[one()], one(), one()) for _ in range(one())
            )))
        elif op == _OP_REDUCTION:
            n_merges, n_finalizes = one(), one()
            instructions.append(BlockwiseReduction(
                merges=tuple(
                    MergeArg(*take(2)) for _ in range(n_merges)
                ),
                finalizes=tuple(
                    FinalizeArg(*take(2)) for _ in range(n_finalizes)
                ),
            ))
        elif op == _OP_COPY:
            instructions.append(BlockwiseCopy(copies=tuple(
                CopyArg(names[one()], one(), one()) for _ in range(one())
            )))
        elif op == _OP_COMM_LAUNCH:
            op_id, n_sends, n_recvs = one(), one(), one()
            sends = tuple(read_comm_arg(SendArg) for _ in range(n_sends))
            recvs = tuple(read_comm_arg(RecvArg) for _ in range(n_recvs))
            instructions.append(
                CommLaunch(op_id=op_id, sends=sends, recvs=recvs)
            )
        elif op == _OP_COMM_WAIT:
            instructions.append(CommWait(op_id=one()))
        else:
            raise PlanWireError(f"bad opcode {op}")

    buffer_sizes = {names[one()]: one() for _ in range(one())}
    local_slices = [TokenSlice(*take(4)) for _ in range(one())]
    maps = []
    for _ in range(7):
        maps.append({(one(), one(), one()): one() for _ in range(one())})
    o, q, kv, acc, do, dq, dkv = maps
    return device, DevicePlan(
        device=device,
        instructions=instructions,
        buffer_sizes=buffer_sizes,
        local_slices=local_slices,
        o_slots=o, q_slots=q, kv_slots=kv, acc_slots=acc,
        do_slots=do, dq_slots=dq, dkv_slots=dkv,
    )


# -- whole plans --------------------------------------------------------------


@dataclass
class PlanWire:
    """One encoded plan: pickled context + concatenated device payloads.

    ``spans`` maps each device to its ``(offset, length)`` inside
    ``payload``; :meth:`device_bytes` returns that slice as a
    ``memoryview``, so a consumer holding the wire bytes (in a shm
    segment, a KV entry, a pipe read) can hand one device its stream
    without copying the rest.
    """

    context: bytes
    spans: Dict[int, Tuple[int, int]]
    payload: Union[bytes, memoryview]

    @property
    def nbytes(self) -> int:
        return len(self.context) + len(self.payload)

    def device_bytes(self, device: int) -> memoryview:
        offset, length = self.spans[device]
        return memoryview(self.payload)[offset:offset + length]

    def to_bytes(self) -> bytes:
        out = bytearray(PLAN_MAGIC)
        out += _U32.pack(len(self.spans))
        for device in sorted(self.spans):
            offset, length = self.spans[device]
            out += _SPAN.pack(device, offset, length)
        out += _U64.pack(len(self.context))
        out += self.context
        out += self.payload
        return bytes(out)

    @classmethod
    def from_bytes(cls, data) -> "PlanWire":
        """Parse wire bytes; the payload stays a view into ``data``."""
        reader = _Reader(data)
        if bytes(reader.take(4)) != PLAN_MAGIC:
            raise PlanWireError("bad plan wire magic")
        spans = {}
        for _ in range(reader.u32()):
            device, offset, length = _SPAN.unpack(reader.take(24))
            spans[device] = (offset, length)
        context = bytes(reader.take(reader.u64()))
        return cls(
            context=context,
            spans=spans,
            payload=reader.view[reader.pos:],
        )


def encode_plan(plan: ExecutionPlan) -> PlanWire:
    """Encode a whole plan for transport."""
    context = pickle.dumps(
        (plan.block_set, plan.cluster, plan.meta), protocol=4
    )
    spans: Dict[int, Tuple[int, int]] = {}
    payload = bytearray()
    for device in sorted(plan.device_plans):
        blob = encode_device_payload(device, plan.device_plans[device])
        spans[device] = (len(payload), len(blob))
        payload += blob
    return PlanWire(context=context, spans=spans, payload=bytes(payload))


def decode_plan(wire) -> ExecutionPlan:
    """Inverse of :func:`encode_plan`.

    Accepts a :class:`PlanWire` or raw :meth:`PlanWire.to_bytes` output
    (``bytes``/``memoryview`` — e.g. a mapped shm segment).
    """
    if not isinstance(wire, PlanWire):
        wire = PlanWire.from_bytes(wire)
    block_set, cluster, meta = pickle.loads(wire.context)
    device_plans = {}
    for device in sorted(wire.spans):
        decoded_device, device_plan = decode_device_payload(
            wire.device_bytes(device)
        )
        if decoded_device != device:
            raise PlanWireError(
                f"span for device {device} decodes to {decoded_device}"
            )
        device_plans[device] = device_plan
    return ExecutionPlan(
        block_set=block_set,
        cluster=cluster,
        device_plans=device_plans,
        meta=meta,
    )
