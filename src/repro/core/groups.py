"""Group-wise scaling: DCP within groups, data parallelism across.

The paper's §8 ("Scaling to larger models/clusters") proposes managing
batch-size growth by grouping nodes, applying DCP within each group and
traditional data parallelism across groups.  This module implements
that composition: sequences are LPT-packed across groups by *attention
workload* (FLOPs, which grow quadratically — packing by tokens alone
would unbalance compute), then each group plans its own sub-batch
independently.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..blocks import AttentionSpec, BatchSpec, SequenceSpec
from ..sim.cluster import ClusterSpec
from .config import DCPConfig
from .planner import DCPPlanner

__all__ = ["GroupedPlan", "split_batch_by_workload", "plan_with_groups"]


@dataclass
class GroupedPlan:
    """One DCP plan per node group (data parallel across groups)."""

    group_batches: List[Optional[BatchSpec]]
    group_plans: List[Optional[object]]

    @property
    def num_groups(self) -> int:
        return len(self.group_plans)

    def tokens_per_group(self) -> List[int]:
        return [
            batch.total_tokens if batch is not None else 0
            for batch in self.group_batches
        ]


def split_batch_by_workload(
    batch: BatchSpec, num_groups: int
) -> List[Optional[BatchSpec]]:
    """LPT-pack sequences into groups by attention FLOPs.

    Memory (tokens) is kept as a tiebreaker so the byte footprint stays
    reasonable too.  Returns ``None`` for groups that receive nothing
    (more groups than sequences).
    """
    if num_groups < 1:
        raise ValueError("need at least one group")
    work = [
        (seq.mask.total_pairs(seq.seqlen), seq.seqlen, index)
        for index, seq in enumerate(batch.sequences)
    ]
    work.sort(reverse=True)
    loads = np.zeros(num_groups, dtype=np.float64)
    token_loads = np.zeros(num_groups, dtype=np.float64)
    members: List[List[SequenceSpec]] = [[] for _ in range(num_groups)]
    for pairs, seqlen, index in work:
        candidates = np.nonzero(loads == loads.min())[0]
        group = int(candidates[np.argmin(token_loads[candidates])])
        loads[group] += pairs
        token_loads[group] += seqlen
        members[group].append(batch.sequences[index])
    return [
        BatchSpec(tuple(group)) if group else None for group in members
    ]


def plan_with_groups(
    batch: BatchSpec,
    cluster: ClusterSpec,
    num_groups: int,
    attention: Optional[AttentionSpec] = None,
    config: Optional[DCPConfig] = None,
) -> GroupedPlan:
    """Plan a batch as ``num_groups`` independent DCP instances.

    ``cluster`` is the whole cluster; its machines are divided evenly
    among the groups (machines must divide evenly).
    """
    if cluster.num_machines % num_groups != 0:
        raise ValueError("machines must divide evenly into groups")
    machines_per_group = cluster.num_machines // num_groups
    group_cluster = ClusterSpec(
        num_machines=machines_per_group,
        devices_per_machine=cluster.devices_per_machine,
        peak_flops=cluster.peak_flops,
        flops_efficiency=cluster.flops_efficiency,
        intra_bandwidth=cluster.intra_bandwidth,
        intra_latency=cluster.intra_latency,
        inter_bandwidth=cluster.inter_bandwidth,
        inter_latency=cluster.inter_latency,
        kernel_overhead=cluster.kernel_overhead,
        tile_overhead=cluster.tile_overhead,
        hbm_bandwidth=cluster.hbm_bandwidth,
    )
    group_batches = split_batch_by_workload(batch, num_groups)
    group_plans: List[Optional[object]] = []
    for group_batch in group_batches:
        if group_batch is None:
            group_plans.append(None)
            continue
        planner = DCPPlanner(group_cluster, attention, config)
        group_plans.append(planner.plan_batch(group_batch))
    return GroupedPlan(group_batches=group_batches, group_plans=group_plans)
