"""Block-size auto-tuning (paper §7.1 hyper-parameter search).

The paper treats the block size ``B`` as a searched hyper-parameter:
"We search through block sizes 512, 1024, 2048, 4096 and report the
best performance."  Block size trades placement flexibility (smaller
blocks -> less communication, Fig. 17) against planning time (Fig. 18)
and per-tile kernel overheads.  This module automates the search
against the timing simulator: probe a few batches per candidate,
score by simulated attention time (optionally budgeting planning
time), and return the winner with the full score table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

import numpy as np

from ..blocks import AttentionSpec, BatchSpec
from ..sim.cluster import ClusterSpec
from ..sim.timing import simulate_plan
from .config import DCPConfig
from .planner import DCPPlanner

__all__ = ["BlockSizeScore", "AutotuneResult", "autotune_block_size"]

#: The paper's candidate set.
PAPER_CANDIDATES = (512, 1024, 2048, 4096)


@dataclass
class BlockSizeScore:
    """Measured quality of one candidate block size."""

    block_size: int
    attention_s: float  # mean simulated fw+bw attention time per batch
    planning_s: float  # mean planning wall-clock per batch
    comm_bytes: float  # mean communication volume per batch

    def objective(self, planning_weight: float = 0.0) -> float:
        return self.attention_s + planning_weight * self.planning_s


@dataclass
class AutotuneResult:
    """Outcome of a block-size search."""

    best: int
    scores: List[BlockSizeScore]
    planning_weight: float

    def score_of(self, block_size: int) -> BlockSizeScore:
        for score in self.scores:
            if score.block_size == block_size:
                return score
        raise KeyError(block_size)

    def table(self) -> str:
        lines = [
            f"{'block':>6} {'attn_ms':>9} {'plan_s':>8} {'comm_mb':>9}"
        ]
        for score in self.scores:
            marker = " *" if score.block_size == self.best else ""
            lines.append(
                f"{score.block_size:>6} {1e3 * score.attention_s:>9.3f} "
                f"{score.planning_s:>8.3f} "
                f"{score.comm_bytes / 1e6:>9.2f}{marker}"
            )
        return "\n".join(lines)


def autotune_block_size(
    batches: Sequence[BatchSpec],
    cluster: ClusterSpec,
    attention: Optional[AttentionSpec] = None,
    config: Optional[DCPConfig] = None,
    candidates: Sequence[int] = PAPER_CANDIDATES,
    probe_batches: int = 2,
    planning_weight: float = 0.0,
) -> AutotuneResult:
    """Search candidate block sizes on a prefix of the batch stream.

    Parameters
    ----------
    batches:
        The training stream; only the first ``probe_batches`` are
        planned per candidate (the paper reports averages over batches
    	with a fixed block size).
    planning_weight:
        How much one second of planning costs relative to one second of
        attention.  The default 0 reproduces the paper's methodology
        (planning overlaps execution when enough cores exist, §6.1);
        raise it when planning cannot be hidden.

    Returns
    -------
    AutotuneResult
        Winner plus per-candidate scores.  Ties break toward larger
        blocks (cheaper planning).
    """
    if not candidates:
        raise ValueError("need at least one candidate block size")
    if probe_batches < 1:
        raise ValueError("need at least one probe batch")
    probes = list(batches)[:probe_batches]
    if not probes:
        raise ValueError("need at least one batch to probe")
    config = config or DCPConfig()

    scores: List[BlockSizeScore] = []
    for block_size in sorted(set(int(c) for c in candidates)):
        tuned = replace(config, block_size=block_size)
        planner = DCPPlanner(cluster, attention, tuned)
        attn, plan_wall, comm = [], [], []
        for batch in probes:
            plan = planner.plan_batch(batch)
            plan_wall.append(planner.last_stats.total)
            forward = simulate_plan(plan, cluster, backward=False)
            backward = simulate_plan(plan, cluster, backward=True)
            attn.append(forward.iteration_time + backward.iteration_time)
            comm.append(plan.total_comm_bytes())
        scores.append(
            BlockSizeScore(
                block_size=block_size,
                attention_s=float(np.mean(attn)),
                planning_s=float(np.mean(plan_wall)),
                comm_bytes=float(np.mean(comm)),
            )
        )

    best = min(
        scores,
        key=lambda s: (s.objective(planning_weight), -s.block_size),
    )
    return AutotuneResult(
        best=best.block_size, scores=scores, planning_weight=planning_weight
    )
