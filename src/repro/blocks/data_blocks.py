"""Data-block identities and sizes (paper §4.1).

A *data block* is a contiguous slice of one attention tensor (Q, KV or
O) covering one token slice of one sequence and one head group.  With
GQA the natural head-partition unit is a KV group together with the
query heads that share it (the paper sets the baselines' head-parallel
degree to the number of KV groups for the same reason).

Placement constraint (paper §4.1): the Q, KV and O blocks of the same
tokens live on the same device, because the device that owns a token
slice feeds it through the whole transformer layer.  The placement unit
is therefore a :class:`TokenSlice`; individual :class:`DataBlockId`
values are what moves over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BlockKind", "TokenSlice", "DataBlockId", "AttentionSpec"]


class BlockKind:
    """Tensor kinds a data block can belong to."""

    Q = "q"
    KV = "kv"
    O = "o"

    ALL = (Q, KV, O)


@dataclass(frozen=True, order=True)
class TokenSlice:
    """A contiguous run of tokens of one sequence: the placement unit."""

    seq_index: int
    block_index: int
    start: int
    stop: int

    @property
    def tokens(self) -> int:
        return self.stop - self.start

    def __post_init__(self) -> None:
        if self.stop <= self.start:
            raise ValueError("token slice must be non-empty")


@dataclass(frozen=True, order=True)
class DataBlockId:
    """Identity of one data block: what communication moves around."""

    kind: str
    seq_index: int
    block_index: int
    head_group: int

    def __post_init__(self) -> None:
        if self.kind not in BlockKind.ALL:
            raise ValueError(f"unknown block kind {self.kind!r}")


@dataclass(frozen=True)
class AttentionSpec:
    """Shape of the attention operator being parallelized.

    Defaults correspond to the paper's micro-benchmark: GQA with 8 query
    heads, 2 KV groups and head dimension 128 (i.e. a 32-head / 8-group
    operator under 4-way tensor parallelism), bf16 activations.
    """

    num_q_heads: int = 8
    num_kv_groups: int = 2
    head_dim: int = 128
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if self.num_q_heads % self.num_kv_groups != 0:
            raise ValueError("query heads must divide evenly into KV groups")

    @property
    def head_groups(self) -> int:
        """Number of head groups used as block granularity."""
        return self.num_kv_groups

    @property
    def q_heads_per_group(self) -> int:
        return self.num_q_heads // self.num_kv_groups

    def q_block_bytes(self, tokens: int) -> int:
        """Bytes of one Q block (all query heads of one group)."""
        return self.q_heads_per_group * tokens * self.head_dim * self.dtype_bytes

    def kv_block_bytes(self, tokens: int) -> int:
        """Bytes of one KV block (K and V of one group)."""
        return 2 * tokens * self.head_dim * self.dtype_bytes

    def o_block_bytes(self, tokens: int) -> int:
        """Bytes of one output block (same shape as the Q block)."""
        return self.q_block_bytes(tokens)

    def block_bytes(self, kind: str, tokens: int) -> int:
        if kind == BlockKind.Q:
            return self.q_block_bytes(tokens)
        if kind == BlockKind.KV:
            return self.kv_block_bytes(tokens)
        if kind == BlockKind.O:
            return self.o_block_bytes(tokens)
        raise ValueError(f"unknown block kind {kind!r}")

    def slice_bytes(self, tokens: int) -> int:
        """Total bytes of all Q/KV/O blocks of one token slice."""
        per_group = (
            self.q_block_bytes(tokens)
            + self.kv_block_bytes(tokens)
            + self.o_block_bytes(tokens)
        )
        return per_group * self.head_groups

    def tile_flops(self, pairs: int) -> int:
        """Forward FLOPs of one computation block covering ``pairs``.

        Two matmuls (QK^T and PV), 2 FLOPs per MAC, over all query heads
        in the group.
        """
        return 4 * pairs * self.head_dim * self.q_heads_per_group
