"""Computation-block identities (paper §4.1).

A *computation block* is the attention of one Q tile against one KV
tile for one head group — the unit the scheduler assigns to devices and
divisions.  It exists only where the attention mask has at least one
unmasked (query, key) pair inside the tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from .data_blocks import BlockKind, DataBlockId

__all__ = ["CompBlock"]


@dataclass(frozen=True, order=True)
class CompBlock:
    """One tile of attention work.

    Attributes
    ----------
    seq_index, head_group:
        Which sequence / head group the tile belongs to.
    q_block, kv_block:
        Tile indices along the sequence dimension.
    pairs:
        Number of unmasked (query, key) pairs in the tile; the FLOP
        weight is proportional to this.
    """

    seq_index: int
    head_group: int
    q_block: int
    kv_block: int
    pairs: int

    def __post_init__(self) -> None:
        if self.pairs <= 0:
            raise ValueError("computation blocks must contain unmasked pairs")

    @property
    def q_input(self) -> DataBlockId:
        return DataBlockId(BlockKind.Q, self.seq_index, self.q_block, self.head_group)

    @property
    def kv_input(self) -> DataBlockId:
        return DataBlockId(BlockKind.KV, self.seq_index, self.kv_block, self.head_group)

    @property
    def output(self) -> DataBlockId:
        return DataBlockId(BlockKind.O, self.seq_index, self.q_block, self.head_group)

    @property
    def inputs(self) -> tuple:
        return (self.q_input, self.kv_input)
