"""Computation-block identities (paper §4.1).

A *computation block* is the attention of one Q tile against one KV
tile for one head group — the unit the scheduler assigns to devices and
divisions.  It exists only where the attention mask has at least one
unmasked (query, key) pair inside the tile.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from .data_blocks import BlockKind, DataBlockId

__all__ = ["CompBlock", "CompBlockArray"]


@dataclass(frozen=True, order=True)
class CompBlock:
    """One tile of attention work.

    Attributes
    ----------
    seq_index, head_group:
        Which sequence / head group the tile belongs to.
    q_block, kv_block:
        Tile indices along the sequence dimension.
    pairs:
        Number of unmasked (query, key) pairs in the tile; the FLOP
        weight is proportional to this.
    """

    seq_index: int
    head_group: int
    q_block: int
    kv_block: int
    pairs: int

    def __post_init__(self) -> None:
        if self.pairs <= 0:
            raise ValueError("computation blocks must contain unmasked pairs")

    @property
    def q_input(self) -> DataBlockId:
        return DataBlockId(BlockKind.Q, self.seq_index, self.q_block, self.head_group)

    @property
    def kv_input(self) -> DataBlockId:
        return DataBlockId(BlockKind.KV, self.seq_index, self.kv_block, self.head_group)

    @property
    def output(self) -> DataBlockId:
        return DataBlockId(BlockKind.O, self.seq_index, self.q_block, self.head_group)

    @property
    def inputs(self) -> tuple:
        return (self.q_input, self.kv_input)


@dataclass(frozen=True, eq=False)
class CompBlockArray:
    """Columnar (structure-of-arrays) view of many computation blocks.

    The planner's hot path works on these flat ``int64`` columns —
    building the placement hypergraph, accounting communication and
    aggregating FLOPs are all single numpy passes.  Individual
    :class:`CompBlock` objects are materialized lazily only where
    object identity is convenient (scheduling, baselines, tests).
    """

    seq_index: np.ndarray
    head_group: np.ndarray
    q_block: np.ndarray
    kv_block: np.ndarray
    pairs: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.seq_index)
        for name in ("head_group", "q_block", "kv_block", "pairs"):
            if len(getattr(self, name)) != n:
                raise ValueError("all CompBlockArray columns must align")
        if n and int(self.pairs.min()) <= 0:
            raise ValueError("computation blocks must contain unmasked pairs")

    def __len__(self) -> int:
        return len(self.seq_index)

    def __getitem__(self, index: int) -> CompBlock:
        return CompBlock(
            seq_index=int(self.seq_index[index]),
            head_group=int(self.head_group[index]),
            q_block=int(self.q_block[index]),
            kv_block=int(self.kv_block[index]),
            pairs=int(self.pairs[index]),
        )

    def __iter__(self) -> Iterator[CompBlock]:
        return iter(self.to_blocks())

    def to_blocks(self) -> List[CompBlock]:
        """Materialize the object view (one CompBlock per row)."""
        return [
            CompBlock(*row)
            for row in zip(
                self.seq_index.tolist(),
                self.head_group.tolist(),
                self.q_block.tolist(),
                self.kv_block.tolist(),
                self.pairs.tolist(),
            )
        ]

    @staticmethod
    def from_blocks(blocks: Sequence[CompBlock]) -> "CompBlockArray":
        """Build the columnar form from an object list."""
        n = len(blocks)
        return CompBlockArray(
            seq_index=np.fromiter((b.seq_index for b in blocks), np.int64, n),
            head_group=np.fromiter((b.head_group for b in blocks), np.int64, n),
            q_block=np.fromiter((b.q_block for b in blocks), np.int64, n),
            kv_block=np.fromiter((b.kv_block for b in blocks), np.int64, n),
            pairs=np.fromiter((b.pairs for b in blocks), np.int64, n),
        )

    @property
    def total_pairs(self) -> int:
        return int(self.pairs.sum())
