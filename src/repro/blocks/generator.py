"""Block generation: from (sequence lengths, masks) to a BlockSet.

This implements §4.1 of the paper: each sequence is cut into token
slices of ``block_size`` tokens; data blocks exist per (slice, head
group, tensor kind); computation blocks exist per (Q tile, KV tile,
head group) wherever the attention mask is not entirely zero inside
the tile.  Masked-out tiles are simply never constructed, which is how
DCP discards unnecessary computation for sparse masks.

Computation blocks are produced directly in columnar form
(:class:`CompBlockArray`): the nonzero tiles of each sequence's
workload matrix are broadcast across head groups with numpy
``repeat``/``tile`` instead of a per-tile Python loop, and the object
list view is materialized lazily for consumers that want
:class:`CompBlock` instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..masks import AttendRanges, MaskSpec, block_bounds, tile_workload_matrix
from .comp_blocks import CompBlock, CompBlockArray
from .data_blocks import AttentionSpec, DataBlockId, TokenSlice

__all__ = ["SequenceSpec", "BatchSpec", "BlockSet", "generate_blocks"]


@dataclass(frozen=True)
class SequenceSpec:
    """One input sequence: its length and its attention mask."""

    seqlen: int
    mask: MaskSpec

    def __post_init__(self) -> None:
        if self.seqlen < 1:
            raise ValueError("sequences must be non-empty")


@dataclass(frozen=True)
class BatchSpec:
    """A training batch: the unit DCP plans for."""

    sequences: Tuple[SequenceSpec, ...]

    def __post_init__(self) -> None:
        if not self.sequences:
            raise ValueError("batches must contain at least one sequence")

    @property
    def total_tokens(self) -> int:
        return sum(seq.seqlen for seq in self.sequences)

    @staticmethod
    def build(seqlens, masks) -> "BatchSpec":
        """Construct from parallel lists of lengths and masks.

        ``masks`` may be a single :class:`MaskSpec` applied to every
        sequence, or one per sequence.
        """
        if isinstance(masks, MaskSpec):
            masks = [masks] * len(seqlens)
        if len(masks) != len(seqlens):
            raise ValueError("need one mask per sequence")
        return BatchSpec(
            tuple(SequenceSpec(int(n), m) for n, m in zip(seqlens, masks))
        )


@dataclass
class BlockSet:
    """All data and computation blocks of one batch.

    This is the planner's working representation: placement assigns
    :attr:`token_slices` and :attr:`comp_array` rows to devices;
    everything downstream (hypergraph, scheduling, execution) reads
    from here.  ``comp_blocks`` is a lazily-materialized object view of
    the columnar :attr:`comp_array`; aggregate totals are O(1) cached
    reductions over the flat columns.
    """

    batch: BatchSpec
    attention: AttentionSpec
    block_size: int
    token_slices: List[TokenSlice]
    comp_array: CompBlockArray
    seq_bounds: List[np.ndarray]
    seq_ranges: List[AttendRanges]
    seq_workloads: List[np.ndarray] = field(default_factory=list)

    # -- lazy views ------------------------------------------------------

    _CACHE_ATTRS = (
        "_comp_blocks",
        "_slice_lookup",
        "_slice_tokens",
        "_seq_slice_offset",
        "_totals",
    )

    @property
    def comp_blocks(self) -> List[CompBlock]:
        """Object view of :attr:`comp_array` (built once, on demand)."""
        cached = self.__dict__.get("_comp_blocks")
        if cached is None:
            cached = self.comp_array.to_blocks()
            self.__dict__["_comp_blocks"] = cached
        return cached

    @property
    def slice_tokens(self) -> np.ndarray:
        """Tokens of every slice, aligned with :attr:`token_slices`."""
        cached = self.__dict__.get("_slice_tokens")
        if cached is None:
            cached = np.fromiter(
                (ts.tokens for ts in self.token_slices),
                np.int64,
                len(self.token_slices),
            )
            self.__dict__["_slice_tokens"] = cached
        return cached

    @property
    def seq_slice_offset(self) -> np.ndarray:
        """Prefix sums of per-sequence slice counts.

        Slices are generated sequence-major, block-minor, so slice
        ``(seq, block)`` lives at flat index
        ``seq_slice_offset[seq] + block``.
        """
        cached = self.__dict__.get("_seq_slice_offset")
        if cached is None:
            counts = np.fromiter(
                (len(bounds) - 1 for bounds in self.seq_bounds),
                np.int64,
                len(self.seq_bounds),
            )
            cached = np.zeros(len(counts) + 1, dtype=np.int64)
            np.cumsum(counts, out=cached[1:])
            self.__dict__["_seq_slice_offset"] = cached
        return cached

    def slice_indices(
        self, seq_index: np.ndarray, block_index: np.ndarray
    ) -> np.ndarray:
        """Vectorized (seq, block) -> flat slice index lookup."""
        return self.seq_slice_offset[seq_index] + block_index

    def _lookup(self) -> Dict[Tuple[int, int], TokenSlice]:
        cached = self.__dict__.get("_slice_lookup")
        if cached is None:
            cached = {
                (ts.seq_index, ts.block_index): ts for ts in self.token_slices
            }
            self.__dict__["_slice_lookup"] = cached
        return cached

    def __getstate__(self):
        state = dict(self.__dict__)
        for name in self._CACHE_ATTRS:
            state.pop(name, None)
        return state

    # -- lookups ---------------------------------------------------------

    def slice_of(self, seq_index: int, block_index: int) -> TokenSlice:
        return self._lookup()[(seq_index, block_index)]

    def slice_for_block(self, block: DataBlockId) -> TokenSlice:
        return self.slice_of(block.seq_index, block.block_index)

    def block_bytes(self, block: DataBlockId) -> int:
        tokens = self.slice_for_block(block).tokens
        return self.attention.block_bytes(block.kind, tokens)

    def slice_bytes(self, token_slice: TokenSlice) -> int:
        return self.attention.slice_bytes(token_slice.tokens)

    def comp_flops(self, comp: CompBlock) -> int:
        return self.attention.tile_flops(comp.pairs)

    def tile_pairs(self, seq_index: int, q_block: int, kv_block: int) -> int:
        """Unmasked pairs of one tile (zero for fully masked tiles)."""
        return int(self.seq_workloads[seq_index][q_block, kv_block])

    # -- aggregates ------------------------------------------------------

    def _aggregate(self) -> Tuple[int, int, int]:
        cached = self.__dict__.get("_totals")
        if cached is None:
            pairs = int(self.comp_array.pairs.sum())
            flops = int(self.attention.tile_flops(self.comp_array.pairs).sum())
            nbytes = int(self.attention.slice_bytes(self.slice_tokens).sum())
            cached = (pairs, flops, nbytes)
            self.__dict__["_totals"] = cached
        return cached

    @property
    def total_pairs(self) -> int:
        return self._aggregate()[0]

    @property
    def total_flops(self) -> int:
        return self._aggregate()[1]

    @property
    def total_bytes(self) -> int:
        return self._aggregate()[2]

    def comp_blocks_of_output(self) -> Dict[DataBlockId, List[CompBlock]]:
        """Map each output block to the computation blocks feeding it."""
        out: Dict[DataBlockId, List[CompBlock]] = {}
        for comp in self.comp_blocks:
            out.setdefault(comp.output, []).append(comp)
        return out

    def summary(self) -> str:
        return (
            f"BlockSet(seqs={len(self.batch.sequences)}, "
            f"tokens={self.batch.total_tokens}, block={self.block_size}, "
            f"slices={len(self.token_slices)}, comps={len(self.comp_array)})"
        )


def generate_blocks(
    batch: BatchSpec,
    attention: Optional[AttentionSpec] = None,
    block_size: int = 1024,
) -> BlockSet:
    """Generate data and computation blocks for a batch (paper §4.1).

    Parameters
    ----------
    batch:
        Sequences with their masks.
    attention:
        Attention operator shape; defaults to the paper's GQA spec.
    block_size:
        Token granularity ``B`` along the sequence dimension (the
        paper's main hyper-parameter, searched over 512..4096).
    """
    attention = attention or AttentionSpec()
    head_groups = attention.head_groups
    group_ids = np.arange(head_groups, dtype=np.int64)
    token_slices: List[TokenSlice] = []
    seq_bounds: List[np.ndarray] = []
    seq_ranges: List[AttendRanges] = []
    seq_workloads: List[np.ndarray] = []
    col_seq: List[np.ndarray] = []
    col_group: List[np.ndarray] = []
    col_q: List[np.ndarray] = []
    col_kv: List[np.ndarray] = []
    col_pairs: List[np.ndarray] = []

    for seq_index, seq in enumerate(batch.sequences):
        bounds = block_bounds(seq.seqlen, block_size)
        ranges = seq.mask.ranges(seq.seqlen)
        workload = tile_workload_matrix(ranges, bounds)
        seq_bounds.append(bounds)
        seq_ranges.append(ranges)
        seq_workloads.append(workload)

        starts = bounds[:-1]
        stops = bounds[1:]
        for block_index, (start, stop) in enumerate(
            zip(starts.tolist(), stops.tolist())
        ):
            token_slices.append(
                TokenSlice(
                    seq_index=seq_index,
                    block_index=block_index,
                    start=int(start),
                    stop=int(stop),
                )
            )

        q_idx, kv_idx = np.nonzero(workload)
        if len(q_idx) == 0:
            continue
        tiles = len(q_idx)
        pairs = workload[q_idx, kv_idx].astype(np.int64)
        # Broadcast the head-group dimension in the same (tile-major,
        # group-minor) order the scalar loop used.
        col_seq.append(np.full(tiles * head_groups, seq_index, dtype=np.int64))
        col_group.append(np.tile(group_ids, tiles))
        col_q.append(np.repeat(q_idx.astype(np.int64), head_groups))
        col_kv.append(np.repeat(kv_idx.astype(np.int64), head_groups))
        col_pairs.append(np.repeat(pairs, head_groups))

    def _cat(parts: List[np.ndarray]) -> np.ndarray:
        return (
            np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        )

    comp_array = CompBlockArray(
        seq_index=_cat(col_seq),
        head_group=_cat(col_group),
        q_block=_cat(col_q),
        kv_block=_cat(col_kv),
        pairs=_cat(col_pairs),
    )
    return BlockSet(
        batch=batch,
        attention=attention,
        block_size=block_size,
        token_slices=token_slices,
        comp_array=comp_array,
        seq_bounds=seq_bounds,
        seq_ranges=seq_ranges,
        seq_workloads=seq_workloads,
    )
