"""Block generation: from (sequence lengths, masks) to a BlockSet.

This implements §4.1 of the paper: each sequence is cut into token
slices of ``block_size`` tokens; data blocks exist per (slice, head
group, tensor kind); computation blocks exist per (Q tile, KV tile,
head group) wherever the attention mask is not entirely zero inside
the tile.  Masked-out tiles are simply never constructed, which is how
DCP discards unnecessary computation for sparse masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..masks import AttendRanges, MaskSpec, block_bounds, tile_workload_matrix
from .comp_blocks import CompBlock
from .data_blocks import AttentionSpec, BlockKind, DataBlockId, TokenSlice

__all__ = ["SequenceSpec", "BatchSpec", "BlockSet", "generate_blocks"]


@dataclass(frozen=True)
class SequenceSpec:
    """One input sequence: its length and its attention mask."""

    seqlen: int
    mask: MaskSpec

    def __post_init__(self) -> None:
        if self.seqlen < 1:
            raise ValueError("sequences must be non-empty")


@dataclass(frozen=True)
class BatchSpec:
    """A training batch: the unit DCP plans for."""

    sequences: Tuple[SequenceSpec, ...]

    def __post_init__(self) -> None:
        if not self.sequences:
            raise ValueError("batches must contain at least one sequence")

    @property
    def total_tokens(self) -> int:
        return sum(seq.seqlen for seq in self.sequences)

    @staticmethod
    def build(seqlens, masks) -> "BatchSpec":
        """Construct from parallel lists of lengths and masks.

        ``masks`` may be a single :class:`MaskSpec` applied to every
        sequence, or one per sequence.
        """
        if isinstance(masks, MaskSpec):
            masks = [masks] * len(seqlens)
        if len(masks) != len(seqlens):
            raise ValueError("need one mask per sequence")
        return BatchSpec(
            tuple(SequenceSpec(int(n), m) for n, m in zip(seqlens, masks))
        )


@dataclass
class BlockSet:
    """All data and computation blocks of one batch.

    This is the planner's working representation: placement assigns
    :attr:`token_slices` and :attr:`comp_blocks` to devices; everything
    downstream (hypergraph, scheduling, execution) reads from here.
    """

    batch: BatchSpec
    attention: AttentionSpec
    block_size: int
    token_slices: List[TokenSlice]
    comp_blocks: List[CompBlock]
    seq_bounds: List[np.ndarray]
    seq_ranges: List[AttendRanges]
    seq_workloads: List[np.ndarray] = field(default_factory=list)
    _slice_lookup: Dict[Tuple[int, int], TokenSlice] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self._slice_lookup:
            self._slice_lookup = {
                (ts.seq_index, ts.block_index): ts for ts in self.token_slices
            }

    # -- lookups ---------------------------------------------------------

    def slice_of(self, seq_index: int, block_index: int) -> TokenSlice:
        return self._slice_lookup[(seq_index, block_index)]

    def slice_for_block(self, block: DataBlockId) -> TokenSlice:
        return self.slice_of(block.seq_index, block.block_index)

    def block_bytes(self, block: DataBlockId) -> int:
        tokens = self.slice_for_block(block).tokens
        return self.attention.block_bytes(block.kind, tokens)

    def slice_bytes(self, token_slice: TokenSlice) -> int:
        return self.attention.slice_bytes(token_slice.tokens)

    def comp_flops(self, comp: CompBlock) -> int:
        return self.attention.tile_flops(comp.pairs)

    def tile_pairs(self, seq_index: int, q_block: int, kv_block: int) -> int:
        """Unmasked pairs of one tile (zero for fully masked tiles)."""
        return int(self.seq_workloads[seq_index][q_block, kv_block])

    # -- aggregates ------------------------------------------------------

    @property
    def total_pairs(self) -> int:
        return sum(c.pairs for c in self.comp_blocks)

    @property
    def total_flops(self) -> int:
        return sum(self.comp_flops(c) for c in self.comp_blocks)

    @property
    def total_bytes(self) -> int:
        return sum(self.slice_bytes(ts) for ts in self.token_slices)

    def comp_blocks_of_output(self) -> Dict[DataBlockId, List[CompBlock]]:
        """Map each output block to the computation blocks feeding it."""
        out: Dict[DataBlockId, List[CompBlock]] = {}
        for comp in self.comp_blocks:
            out.setdefault(comp.output, []).append(comp)
        return out

    def summary(self) -> str:
        return (
            f"BlockSet(seqs={len(self.batch.sequences)}, "
            f"tokens={self.batch.total_tokens}, block={self.block_size}, "
            f"slices={len(self.token_slices)}, comps={len(self.comp_blocks)})"
        )


def generate_blocks(
    batch: BatchSpec,
    attention: Optional[AttentionSpec] = None,
    block_size: int = 1024,
) -> BlockSet:
    """Generate data and computation blocks for a batch (paper §4.1).

    Parameters
    ----------
    batch:
        Sequences with their masks.
    attention:
        Attention operator shape; defaults to the paper's GQA spec.
    block_size:
        Token granularity ``B`` along the sequence dimension (the
        paper's main hyper-parameter, searched over 512..4096).
    """
    attention = attention or AttentionSpec()
    token_slices: List[TokenSlice] = []
    comp_blocks: List[CompBlock] = []
    seq_bounds: List[np.ndarray] = []
    seq_ranges: List[AttendRanges] = []
    seq_workloads: List[np.ndarray] = []

    for seq_index, seq in enumerate(batch.sequences):
        bounds = block_bounds(seq.seqlen, block_size)
        ranges = seq.mask.ranges(seq.seqlen)
        workload = tile_workload_matrix(ranges, bounds)
        seq_bounds.append(bounds)
        seq_ranges.append(ranges)
        seq_workloads.append(workload)

        for block_index in range(len(bounds) - 1):
            token_slices.append(
                TokenSlice(
                    seq_index=seq_index,
                    block_index=block_index,
                    start=int(bounds[block_index]),
                    stop=int(bounds[block_index + 1]),
                )
            )

        q_idx, kv_idx = np.nonzero(workload)
        for qi, ki in zip(q_idx.tolist(), kv_idx.tolist()):
            pairs = int(workload[qi, ki])
            for head_group in range(attention.head_groups):
                comp_blocks.append(
                    CompBlock(
                        seq_index=seq_index,
                        head_group=head_group,
                        q_block=qi,
                        kv_block=ki,
                        pairs=pairs,
                    )
                )

    return BlockSet(
        batch=batch,
        attention=attention,
        block_size=block_size,
        token_slices=token_slices,
        comp_blocks=comp_blocks,
        seq_bounds=seq_bounds,
        seq_ranges=seq_ranges,
        seq_workloads=seq_workloads,
    )
