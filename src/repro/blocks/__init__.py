"""Data/computation block representation (paper §4.1)."""

from .comp_blocks import CompBlock, CompBlockArray
from .data_blocks import AttentionSpec, BlockKind, DataBlockId, TokenSlice
from .generator import BatchSpec, BlockSet, SequenceSpec, generate_blocks

__all__ = [
    "CompBlock",
    "CompBlockArray",
    "AttentionSpec",
    "BlockKind",
    "DataBlockId",
    "TokenSlice",
    "BatchSpec",
    "BlockSet",
    "SequenceSpec",
    "generate_blocks",
]
