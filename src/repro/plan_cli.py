"""Command-line planner: plan one batch and inspect the result.

Usage::

    python -m repro.plan --seqlens 16384 4096 2048 --mask lambda \\
        --machines 2 --devices 4 --block-size 1024

Prints the placement summary (tokens / FLOPs / memory per device),
communication volumes, the simulated timeline as an ASCII Gantt chart,
and optionally writes a Chrome trace (``--trace out.json``) or compares
against a baseline (``--baseline rfa_zigzag``).  This is the
kick-the-tires tool: everything the planner decides for one batch,
visible in one screen.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


from .baselines import (
    FlexSPPlanner,
    LoongTrainPlanner,
    RingAttentionPlanner,
    TransformerEnginePlanner,
    UlyssesPlanner,
)
from .blocks import AttentionSpec, BatchSpec, generate_blocks
from .core import DCPConfig, DCPPlanner
from .masks import make_mask
from .sim import (
    ClusterSpec,
    ascii_gantt,
    plan_memory,
    simulate_plan,
    write_chrome_trace,
)

__all__ = ["main"]

_BASELINES = {
    "rfa_ring": lambda: RingAttentionPlanner(zigzag=False),
    "rfa_zigzag": lambda: RingAttentionPlanner(zigzag=True),
    "loongtrain": lambda: LoongTrainPlanner(),
    "te": lambda: TransformerEnginePlanner(),
    "ulysses": lambda: UlyssesPlanner(),
    "flexsp": lambda: FlexSPPlanner(),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.plan",
        description="Plan one batch with DCP and inspect the result.",
    )
    parser.add_argument("--seqlens", type=int, nargs="+", required=True,
                        help="sequence lengths of the batch")
    parser.add_argument("--mask", default="causal",
                        help="mask name for make_mask (default: causal)")
    parser.add_argument("--machines", type=int, default=2)
    parser.add_argument("--devices", type=int, default=4,
                        help="devices per machine")
    parser.add_argument("--block-size", type=int, default=1024)
    parser.add_argument("--divisions", type=int, default=4)
    parser.add_argument("--q-heads", type=int, default=8)
    parser.add_argument("--kv-groups", type=int, default=2)
    parser.add_argument("--head-dim", type=int, default=128)
    parser.add_argument("--baseline", choices=sorted(_BASELINES),
                        default=None,
                        help="also plan with a baseline and compare")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome trace of the DCP timeline")
    parser.add_argument("--gantt-width", type=int, default=64)
    return parser


def _report(name: str, plan, cluster: ClusterSpec, width: int) -> float:
    timing = simulate_plan(plan)
    memory = plan_memory(plan)
    tokens = {
        device: sum(ts.tokens for ts in dp.local_slices)
        for device, dp in sorted(plan.device_plans.items())
    }
    inter = 0
    for device, dp in plan.device_plans.items():
        for ins in dp.instructions:
            if ins.kind == "comm_launch":
                for send in ins.sends:
                    if not cluster.same_machine(device, send.peer):
                        inter += send.nbytes
    print(f"\n== {name} ==")
    print(f"tokens/device : {list(tokens.values())}")
    print(f"comm          : {plan.total_comm_bytes() / 1e6:.2f} MB total, "
          f"{inter / 1e6:.2f} MB inter-node")
    print(f"memory        : {memory.max_bytes / 1e6:.1f} MB peak/device, "
          f"imbalance {memory.imbalance():.2f}")
    print(f"attention fw  : {timing.iteration_time * 1e3:.3f} ms simulated")
    print(ascii_gantt(timing, width=width))
    return timing.iteration_time


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    cluster = ClusterSpec(
        num_machines=args.machines, devices_per_machine=args.devices
    )
    attention = AttentionSpec(
        num_q_heads=args.q_heads,
        num_kv_groups=args.kv_groups,
        head_dim=args.head_dim,
    )
    try:
        mask = make_mask(args.mask)
    except (KeyError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    batch = BatchSpec.build(args.seqlens, mask)
    block_set = generate_blocks(batch, attention, args.block_size)
    print(
        f"batch: {len(args.seqlens)} sequences, {batch.total_tokens} tokens,"
        f" mask {args.mask}; {block_set.summary()}"
    )

    planner = DCPPlanner(
        cluster, attention,
        DCPConfig(block_size=args.block_size,
                  num_divisions=args.divisions),
    )
    plan = planner.plan_batch(batch)
    stats = planner.last_stats
    print(
        f"planning: {stats.total:.3f} s "
        f"(blocks {stats.block_generation:.3f}, "
        f"placement {stats.placement:.3f}, "
        f"scheduling {stats.scheduling:.3f})"
    )
    dcp_time = _report("dcp", plan, cluster, args.gantt_width)

    if args.trace:
        write_chrome_trace(simulate_plan(plan), args.trace)
        print(f"\nchrome trace written to {args.trace}")

    if args.baseline:
        baseline = _BASELINES[args.baseline]()
        base_plan = baseline.plan(block_set, cluster)
        base_time = _report(
            args.baseline, base_plan, cluster, args.gantt_width
        )
        print(
            f"\nspeed-up (attention fw): {base_time / dcp_time:.2f}x "
            f"over {args.baseline}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
