"""Timing simulation of execution plans (alpha-beta model).

This is the performance substitute for the paper's A100 testbed: the
simulator replays each device's instruction stream against per-device
clocks, modelling

* computation as ``flops / effective_flops`` plus per-kernel and
  per-tile overheads,
* communication with an alpha-beta link model, serialized over shared
  resources (NVSwitch point-to-point links intra-machine, a per-machine
  NIC in each direction inter-machine),
* overlap exactly as the instruction streams express it: transfers
  launched by ``CommLaunch`` proceed while subsequent computation runs;
  ``CommWait`` stalls only if the data has not arrived.

The result records per-device compute/communication interval unions, so
the paper's decomposition (Fig. 1 / Fig. 22: non-overlapped attention
computation, overlapped time, non-overlapped CP communication) falls
out of interval arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..scheduling.instructions import (
    BlockwiseAttention,
    BlockwiseAttentionBackward,
    BlockwiseCopy,
    BlockwiseGradReduce,
    BlockwiseReduction,
    CommLaunch,
    CommWait,
    ExecutionPlan,
)
from .cluster import ClusterSpec

__all__ = ["DeviceTiming", "TimingResult", "simulate_plan"]

#: Backward-over-forward multipliers: attention backward recomputes the
#: tile and produces dQ/dK/dV (~2.5x FLOPs); communication moves KV in
#: and dKV back out (~2x bytes).
_BW_FLOPS_FACTOR = 2.5
_BW_COMM_FACTOR = 2.0


def _union_length(intervals: List[Tuple[float, float]]) -> float:
    if not intervals:
        return 0.0
    intervals = sorted(intervals)
    total = 0.0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    return total + (current_end - current_start)


def _intersection_length(
    a: List[Tuple[float, float]], b: List[Tuple[float, float]]
) -> float:
    """Length of (union of a) ∩ (union of b)."""
    events = []
    for start, end in a:
        events.append((start, 0, 1))
        events.append((end, 0, -1))
    for start, end in b:
        events.append((start, 1, 1))
        events.append((end, 1, -1))
    events.sort()
    depth = [0, 0]
    last = None
    total = 0.0
    for time, which, delta in events:
        if last is not None and depth[0] > 0 and depth[1] > 0:
            total += time - last
        depth[which] += delta
        last = time
    return total


@dataclass
class DeviceTiming:
    """Per-device timeline summary.

    ``events`` is the labeled timeline: ``(name, lane, start, end)``
    tuples with ``lane`` one of ``"compute"``, ``"comm"`` or
    ``"stall"`` — the raw material of :mod:`repro.sim.trace`.
    """

    device: int
    total: float
    compute_intervals: List[Tuple[float, float]] = field(default_factory=list)
    comm_intervals: List[Tuple[float, float]] = field(default_factory=list)
    stall: float = 0.0
    events: List[Tuple[str, str, float, float]] = field(default_factory=list)

    @property
    def compute_time(self) -> float:
        return _union_length(self.compute_intervals)

    @property
    def comm_time(self) -> float:
        return _union_length(self.comm_intervals)

    @property
    def overlap_time(self) -> float:
        return _intersection_length(self.compute_intervals, self.comm_intervals)

    @property
    def exposed_comm(self) -> float:
        return self.comm_time - self.overlap_time

    @property
    def exposed_compute(self) -> float:
        return self.compute_time - self.overlap_time


@dataclass
class TimingResult:
    """Cluster-level timing of one plan replay."""

    devices: Dict[int, DeviceTiming]

    @property
    def iteration_time(self) -> float:
        return max((d.total for d in self.devices.values()), default=0.0)

    @property
    def critical_device(self) -> DeviceTiming:
        return max(self.devices.values(), key=lambda d: d.total)

    def breakdown(self) -> Dict[str, float]:
        """The paper's stacked-bar decomposition on the critical device."""
        dev = self.critical_device
        overlap = dev.overlap_time
        non_ovlp_attn = dev.compute_time - overlap
        non_ovlp_comm = dev.comm_time - overlap
        others = max(dev.total - non_ovlp_attn - overlap - non_ovlp_comm, 0.0)
        return {
            "others": others,
            "non_ovlp_attn": non_ovlp_attn,
            "overlap": overlap,
            "non_ovlp_comm": non_ovlp_comm,
            "total": dev.total,
        }

    def mean_compute(self) -> float:
        return float(np.mean([d.compute_time for d in self.devices.values()]))


class _TimingRunner:
    """Clock-based interpreter of one device's instruction stream."""

    def __init__(self, device, plan, sim) -> None:
        self.device = device
        self.instructions = plan.instructions
        self.sim = sim
        self.pc = 0
        self.clock = 0.0
        self.timing = DeviceTiming(device=device, total=0.0)

    @property
    def done(self) -> bool:
        return self.pc >= len(self.instructions)

    def step(self) -> bool:
        progressed = False
        while not self.done:
            instruction = self.instructions[self.pc]
            if isinstance(instruction, CommWait):
                arrival = self.sim.wait_time(self.device, instruction.op_id)
                if arrival is None:
                    return progressed  # sender has not launched yet
                if arrival > self.clock:
                    self.timing.stall += arrival - self.clock
                    self.timing.events.append(
                        (f"wait op{instruction.op_id}", "stall",
                         self.clock, arrival)
                    )
                    self.clock = arrival
            elif isinstance(instruction, CommLaunch):
                self.clock += self.sim.cluster.kernel_overhead
                self.sim.launch(self.device, instruction, self.clock)
            elif isinstance(
                instruction, (BlockwiseAttention, BlockwiseAttentionBackward)
            ):
                duration = self.sim.attention_time(instruction)
                self.timing.compute_intervals.append(
                    (self.clock, self.clock + duration)
                )
                self.timing.events.append(
                    (
                        f"{instruction.kind}[{len(instruction.tiles)} tiles]",
                        "compute",
                        self.clock,
                        self.clock + duration,
                    )
                )
                self.clock += duration
            elif isinstance(
                instruction,
                (BlockwiseReduction, BlockwiseCopy, BlockwiseGradReduce),
            ):
                duration = self.sim.memory_op_time(instruction)
                self.timing.compute_intervals.append(
                    (self.clock, self.clock + duration)
                )
                self.timing.events.append(
                    (instruction.kind, "compute", self.clock,
                     self.clock + duration)
                )
                self.clock += duration
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown instruction {instruction!r}")
            self.pc += 1
            progressed = True
        self.timing.total = self.clock
        return progressed


class _TimingSim:
    """Shared state: link contention and message arrival times."""

    def __init__(
        self,
        plan: ExecutionPlan,
        cluster: ClusterSpec,
        flops_factor: float,
        comm_factor: float,
    ) -> None:
        self.plan = plan
        self.cluster = cluster
        self.flops_factor = flops_factor
        self.comm_factor = comm_factor
        self.block_set = plan.block_set
        self.resource_free: Dict[Tuple, float] = {}
        self.arrivals: Dict[Tuple[int, int, Tuple], float] = {}
        # op_id -> list of (peer, tag) a device waits on
        self.recv_specs: Dict[Tuple[int, int], List[Tuple[int, Tuple]]] = {}
        self.comm_intervals: Dict[int, List[Tuple[float, float]]] = {}
        self.comm_events: Dict[int, List[Tuple[str, str, float, float]]] = {}

    # -- communication -----------------------------------------------------

    def launch(self, device: int, instruction: CommLaunch, now: float) -> None:
        cluster = self.cluster
        for send in instruction.sends:
            nbytes = send.nbytes * self.comm_factor
            if cluster.same_machine(device, send.peer):
                resources = [("link", device, send.peer)]
                bandwidth, latency = cluster.intra_bandwidth, cluster.intra_latency
            else:
                resources = [
                    ("nic_out", cluster.machine_of(device)),
                    ("nic_in", cluster.machine_of(send.peer)),
                ]
                bandwidth, latency = cluster.inter_bandwidth, cluster.inter_latency
            start = max([now] + [self.resource_free.get(r, 0.0) for r in resources])
            end = start + nbytes / bandwidth
            for resource in resources:
                self.resource_free[resource] = end
            arrival = end + latency
            self.arrivals[(device, send.peer, send.tag)] = arrival
            self.comm_intervals.setdefault(device, []).append((start, arrival))
            self.comm_intervals.setdefault(send.peer, []).append((start, arrival))
            kb = send.nbytes / 1024.0
            self.comm_events.setdefault(device, []).append(
                (f"send {kb:.0f}KB -> dev{send.peer}", "comm", start, arrival)
            )
            self.comm_events.setdefault(send.peer, []).append(
                (f"recv {kb:.0f}KB <- dev{device}", "comm", start, arrival)
            )
        if instruction.recvs:
            self.recv_specs[(device, instruction.op_id)] = [
                (recv.peer, recv.tag) for recv in instruction.recvs
            ]

    def wait_time(self, device: int, op_id: int) -> Optional[float]:
        specs = self.recv_specs.get((device, op_id), [])
        arrival = 0.0
        for peer, tag in specs:
            key = (peer, device, tag)
            if key not in self.arrivals:
                return None
            arrival = max(arrival, self.arrivals[key])
        return arrival

    # -- computation ---------------------------------------------------------

    def attention_time(self, instruction) -> float:
        flops = 0
        for tile in instruction.tiles:
            pairs = self.block_set.tile_pairs(
                tile.seq_index, tile.q_block, tile.kv_block
            )
            flops += self.block_set.attention.tile_flops(pairs)
        flops *= self.flops_factor
        if instruction.kind == "attention_backward":
            # Recompute + dQ/dK/dV: ~2.5x the forward tile FLOPs.
            flops *= _BW_FLOPS_FACTOR
        return (
            self.cluster.kernel_overhead
            + len(instruction.tiles) * self.cluster.tile_overhead
            + self.cluster.compute_time(flops)
        )

    def memory_op_time(self, instruction) -> float:
        attention = self.block_set.attention
        block_bytes = attention.o_block_bytes(self.block_set.block_size) * 2
        if isinstance(instruction, BlockwiseReduction):
            ops = len(instruction.merges) + len(instruction.finalizes)
        elif isinstance(instruction, BlockwiseGradReduce):
            ops = len(instruction.adds)
        else:
            ops = len(instruction.copies)
        return (
            self.cluster.kernel_overhead
            + ops * block_bytes / self.cluster.hbm_bandwidth
        )


def simulate_plan(
    plan: ExecutionPlan,
    cluster: Optional[ClusterSpec] = None,
    backward: bool = False,
) -> TimingResult:
    """Replay ``plan`` and return the cluster timing.

    ``backward=True`` models the attention backward pass: identical
    schedule with ~2.5x the FLOPs (recompute + three gradients) and ~2x
    the bytes (KV in, dKV out) — the standard cost model for
    Flash-style distributed attention backward.
    """
    cluster = cluster or plan.cluster
    sim = _TimingSim(
        plan,
        cluster,
        flops_factor=_BW_FLOPS_FACTOR if backward else 1.0,
        comm_factor=_BW_COMM_FACTOR if backward else 1.0,
    )
    runners = [
        _TimingRunner(device, device_plan, sim)
        for device, device_plan in sorted(plan.device_plans.items())
    ]
    while True:
        if all(runner.done for runner in runners):
            break
        progressed = False
        for runner in runners:
            if not runner.done and runner.step():
                progressed = True
        if not progressed:
            stuck = [r.device for r in runners if not r.done]
            raise RuntimeError(f"timing deadlock on devices {stuck}")
    devices = {}
    for runner in runners:
        runner.timing.comm_intervals = sim.comm_intervals.get(runner.device, [])
        runner.timing.events.extend(sim.comm_events.get(runner.device, []))
        runner.timing.events.sort(key=lambda e: (e[2], e[3]))
        runner.timing.total = max(
            runner.timing.total,
            max((end for _, end in runner.timing.comm_intervals), default=0.0),
        )
        devices[runner.device] = runner.timing
    return TimingResult(devices=devices)
