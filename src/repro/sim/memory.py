"""Per-device memory accounting for execution plans.

The paper argues memory balance is as important as computation balance
(memory grows linearly in assigned tokens).  This module prices each
device's buffers from its plan: local Q/KV/O blocks, transient fetch
slots and accumulator slots — the executor's block-buffer high-water
mark converted to bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

__all__ = ["MemoryReport", "plan_memory"]

#: Accumulators hold fp32 acc plus (m, l) statistics.
_ACC_DTYPE_BYTES = 4


@dataclass
class MemoryReport:
    """Buffer memory per device, in bytes."""

    per_device: Dict[int, int]

    @property
    def max_bytes(self) -> int:
        return max(self.per_device.values(), default=0)

    @property
    def total_bytes(self) -> int:
        return sum(self.per_device.values())

    def imbalance(self) -> float:
        """max / mean - 1 across devices (0 = perfectly balanced)."""
        values = np.array(list(self.per_device.values()), dtype=np.float64)
        if len(values) == 0 or values.mean() == 0:
            return 0.0
        return float(values.max() / values.mean() - 1.0)


def plan_memory(plan) -> MemoryReport:
    """Price every device's block buffers from its high-water marks."""
    block_set = plan.block_set
    attention = block_set.attention
    block = block_set.block_size
    q_bytes = attention.q_block_bytes(block)
    kv_bytes = attention.kv_block_bytes(block)
    o_bytes = attention.o_block_bytes(block)
    acc_bytes = (
        attention.q_heads_per_group
        * block
        * (attention.head_dim + 2)
        * _ACC_DTYPE_BYTES
    )

    per_device: Dict[int, int] = {}
    for device, device_plan in plan.device_plans.items():
        sizes = device_plan.buffer_sizes
        per_device[device] = (
            sizes.get("q", 0) * q_bytes
            + sizes.get("kv", 0) * kv_bytes
            + sizes.get("o", 0) * o_bytes
            + sizes.get("acc", 0) * acc_bytes
        )
    return MemoryReport(per_device=per_device)
