"""Cluster topology and hardware parameters.

Calibrated to the paper's testbed: Amazon EC2 p4de.24xlarge — 8x A100
80GB per node connected by NVSwitch (600 GB/s bidirectional = 300 GB/s
per direction), nodes connected by 4x100 Gbps EFA NICs (= 50 GB/s per
node per direction).  The achievable-FLOPs fraction and kernel-launch
overheads are effective values, chosen so simulated attention times land
in the same regime as the paper's measurements.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Deque, List, Optional, Tuple

__all__ = [
    "ClusterSpec",
    "ClusterEvent",
    "ClusterEventSource",
    "MICRO_BENCH_CLUSTER",
    "E2E_CLUSTER",
]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous multi-machine GPU cluster.

    Devices are numbered globally: device ``d`` lives on machine
    ``d // devices_per_machine``.
    """

    num_machines: int = 4
    devices_per_machine: int = 8
    # Computation.
    peak_flops: float = 312e12  # A100 BF16 tensor-core peak
    flops_efficiency: float = 0.42  # achievable fraction for attention
    # Intra-machine links (NVSwitch), per direction, per device.
    intra_bandwidth: float = 300e9
    intra_latency: float = 8e-6
    # Inter-machine NIC, per direction, shared by a machine's devices.
    inter_bandwidth: float = 50e9
    inter_latency: float = 25e-6
    # Fixed overhead per launched kernel / instruction.
    kernel_overhead: float = 20e-6
    # Per-tile fixed cost inside a fused attention kernel (block setup,
    # block-table reads); dominates for tiny sparse tiles.
    tile_overhead: float = 1.5e-6
    # HBM bandwidth, used to cost reductions and copies.
    hbm_bandwidth: float = 1.6e12

    def __post_init__(self) -> None:
        if self.num_machines < 1 or self.devices_per_machine < 1:
            raise ValueError("cluster must contain at least one device")

    @property
    def num_devices(self) -> int:
        return self.num_machines * self.devices_per_machine

    def machine_of(self, device: int) -> int:
        if not 0 <= device < self.num_devices:
            raise ValueError(f"device {device} outside cluster")
        return device // self.devices_per_machine

    def devices_of_machine(self, machine: int) -> range:
        if not 0 <= machine < self.num_machines:
            raise ValueError(f"machine {machine} outside cluster")
        start = machine * self.devices_per_machine
        return range(start, start + self.devices_per_machine)

    def same_machine(self, a: int, b: int) -> bool:
        return self.machine_of(a) == self.machine_of(b)

    def effective_flops(self) -> float:
        return self.peak_flops * self.flops_efficiency

    def link_time(self, src: int, dst: int, nbytes: int) -> float:
        """Alpha-beta transfer time for one message."""
        if self.same_machine(src, dst):
            return self.intra_latency + nbytes / self.intra_bandwidth
        return self.inter_latency + nbytes / self.inter_bandwidth

    def compute_time(self, flops: float) -> float:
        return flops / self.effective_flops()

    def affected_devices(self, other: "ClusterSpec") -> Tuple[int, ...]:
        """Devices whose existence or machine assignment differs vs ``other``.

        The delta re-planner's blast radius: a plan that touches none of
        these devices stays valid across the shape change.  With equal
        ``devices_per_machine`` only the trailing added/removed devices
        are affected (global device numbering keeps every surviving
        device on its machine); a ``devices_per_machine`` change
        rewrites the device -> machine map wholesale, so every device of
        either shape is affected.
        """
        if self.devices_per_machine != other.devices_per_machine:
            return tuple(range(max(self.num_devices, other.num_devices)))
        low = min(self.num_devices, other.num_devices)
        high = max(self.num_devices, other.num_devices)
        return tuple(range(low, high))


@dataclass(frozen=True)
class ClusterEvent:
    """One observed cluster-shape change.

    ``cluster`` is the shape *after* the event; the streaming pipeline
    compares it against the shape its in-flight plans targeted to decide
    what to invalidate and re-dispatch.  ``previous`` is the shape
    before the event and ``affected_devices`` the devices the change
    touches (removed, added, or remapped onto a different machine) —
    the metadata delta re-planning keys its blast radius off: plans
    that place nothing on an affected device survive the event.
    """

    kind: str  # "device_add" | "device_remove" | "resize"
    cluster: ClusterSpec
    previous: Optional[ClusterSpec] = None
    affected_devices: Tuple[int, ...] = field(default=())


class ClusterEventSource:
    """Thread-safe feed of :class:`ClusterEvent` for online re-planning.

    The serving-shaped pipeline cannot assume a fixed cluster: machines
    join and leave mid-stream.  Whoever observes the change (an operator
    thread, a health monitor, a test) calls :meth:`add_machines` /
    :meth:`remove_machines` / :meth:`resize`; the streaming pipeline
    drains :meth:`poll` between iterations and re-plans its prefetch
    window against :attr:`current`.
    """

    #: Retained event history for :meth:`poll`; bounded so an unbounded
    #: serving stream with periodic events stays O(1) memory (the
    #: pipelines observe via :attr:`version`/:attr:`current`, which
    #: never miss a change regardless of this buffer).
    MAX_BUFFERED_EVENTS = 256

    def __init__(self, cluster: ClusterSpec) -> None:
        self._cluster = cluster
        self._events: Deque[ClusterEvent] = deque(
            maxlen=self.MAX_BUFFERED_EVENTS
        )
        self._version = 0
        self._lock = threading.Lock()

    @property
    def current(self) -> ClusterSpec:
        with self._lock:
            return self._cluster

    @property
    def version(self) -> int:
        """Total events ever emitted — a monotonic observation cursor.

        Consumers that must not race each other (several pipelines
        sharing one source) observe via ``version``/``current`` rather
        than the destructive :meth:`poll`: each keeps its own last-seen
        version, so every consumer sees every shape change.
        """
        with self._lock:
            return self._version

    def _commit(self, cluster: ClusterSpec, kind: str) -> ClusterEvent:
        """Record a shape change (caller holds the lock).

        Read-modify-commit must happen under one lock acquisition: two
        observers concurrently removing one machine each from a
        3-machine cluster must end at 1 machine, not both at 2.
        """
        event = ClusterEvent(
            kind=kind,
            cluster=cluster,
            previous=self._cluster,
            affected_devices=self._cluster.affected_devices(cluster),
        )
        self._cluster = cluster
        self._events.append(event)
        self._version += 1
        return event

    def emit(self, cluster: ClusterSpec, kind: str = "resize") -> ClusterEvent:
        """Record an externally constructed shape change."""
        with self._lock:
            return self._commit(cluster, kind)

    def add_machines(self, count: int = 1) -> ClusterEvent:
        with self._lock:
            cluster = replace(
                self._cluster, num_machines=self._cluster.num_machines + count
            )
            return self._commit(cluster, kind="device_add")

    def remove_machines(self, count: int = 1) -> ClusterEvent:
        with self._lock:
            remaining = self._cluster.num_machines - count
            if remaining < 1:
                raise ValueError("cannot remove the last machine")
            cluster = replace(self._cluster, num_machines=remaining)
            return self._commit(cluster, kind="device_remove")

    def resize(self, **changes) -> ClusterEvent:
        with self._lock:
            cluster = replace(self._cluster, **changes)
            return self._commit(cluster, kind="resize")

    def poll(self) -> List[ClusterEvent]:
        """Drain and return events accumulated since the last poll.

        Destructive and therefore single-consumer; concurrent pipeline
        consumers use :attr:`version`/:attr:`current` instead.
        """
        with self._lock:
            events = list(self._events)
            self._events.clear()
            return events

    def pending(self) -> int:
        with self._lock:
            return len(self._events)


#: The paper's micro-benchmark testbed: 4 p4de nodes, 32 GPUs (§7.1).
MICRO_BENCH_CLUSTER = ClusterSpec(num_machines=4, devices_per_machine=8)

#: The end-to-end testbed: 8 p4de nodes, 64 GPUs (§7.2).  With 4-way
#: tensor parallelism inside each node, context parallelism sees 16
#: ranks: 2 per machine, each rank aggregating 4 GPUs' NVSwitch lanes.
E2E_CLUSTER = ClusterSpec(
    num_machines=8,
    devices_per_machine=2,
    # A CP rank = a TP group of 4 GPUs acting as one device.
    peak_flops=4 * 312e12,
    intra_bandwidth=300e9,
    inter_bandwidth=50e9,
)
