"""Timeline export of simulated executions.

The timing simulator records a labeled event stream per device
(attention kernels with tile counts, reductions, transfers with sizes
and peers, stalls).  This module renders that stream two ways:

* **Chrome trace JSON** (:func:`to_chrome_trace` /
  :func:`write_chrome_trace`) — load the file into ``chrome://tracing``
  or Perfetto, the same workflow the paper uses with NVIDIA Nsight
  Systems for Fig. 22;
* **ASCII Gantt chart** (:func:`ascii_gantt`) — a terminal rendering
  where overlap between computation and communication (the quantity
  Fig. 22 decomposes) is directly visible.

It also renders the *planning* pipeline:
:func:`overlap_chrome_trace` turns a
:class:`~repro.core.pool.PlanningTimeline` — analytic
(:func:`~repro.core.pool.simulate_planning_overlap`) or measured
(:meth:`repro.pipeline.OverlapStats.timeline`) — into the same trace
format, one lane for execution and one for planning, with stalls
called out, so the §6.1 overlap claim is inspectable in Perfetto next
to the execution traces.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .timing import TimingResult

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "ascii_gantt",
    "overlap_chrome_trace",
    "merge_chrome_traces",
]

_LANES = ("compute", "comm", "stall")
_LANE_CHAR = {"compute": "#", "comm": "=", "stall": "-"}
_OVERLAP_CHAR = "X"


def to_chrome_trace(result: TimingResult, time_scale: float = 1e6) -> Dict:
    """Convert a :class:`TimingResult` into Chrome trace-event JSON.

    One process per device; one thread per lane (compute / comm /
    stall).  ``time_scale`` converts simulated seconds into the
    microseconds the trace format expects.
    """
    events: List[Dict] = []
    for device, timing in sorted(result.devices.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": device,
                "args": {"name": f"device {device}"},
            }
        )
        for tid, lane in enumerate(_LANES):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": device,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        for name, lane, start, end in timing.events:
            events.append(
                {
                    "name": name,
                    "cat": lane,
                    "ph": "X",
                    "pid": device,
                    "tid": _LANES.index(lane),
                    "ts": start * time_scale,
                    "dur": max(end - start, 0.0) * time_scale,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(result: TimingResult, path: str,
                       time_scale: float = 1e6) -> None:
    """Write the Chrome trace of ``result`` to ``path`` (JSON)."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(result, time_scale=time_scale), handle)


def overlap_chrome_trace(
    timeline, time_scale: float = 1e6, clock_origin: Optional[float] = None
) -> Dict:
    """Chrome trace of a planning/execution overlap timeline.

    ``timeline`` is any object with ``exec_start``/``exec_end``/
    ``plan_start``/``plan_end``/``stalls`` per-iteration lists (the
    :class:`~repro.core.pool.PlanningTimeline` shape).  Lane 0 holds
    execution slices, lane 1 planning slices, lane 2 the stalls —
    exposed planning the pipeline failed to hide.

    Measured timelines are relative to the pipeline's start; pass that
    start's ``time.perf_counter()`` value (``OverlapPipeline.clock_origin``)
    as ``clock_origin`` and the trace can be aligned with tracer spans
    from the same run via :func:`merge_chrome_traces`.
    """
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "planning pipeline"},
        }
    ]
    lanes = ("execution", "planning", "stall")
    for tid, lane in enumerate(lanes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": lane},
            }
        )

    def slice_event(name, tid, start, end):
        events.append(
            {
                "name": name,
                "cat": lanes[tid],
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": start * time_scale,
                "dur": max(end - start, 0.0) * time_scale,
            }
        )

    iterations = len(timeline.exec_start)
    for i in range(iterations):
        slice_event(f"exec {i}", 0, timeline.exec_start[i], timeline.exec_end[i])
        slice_event(f"plan {i}", 1, timeline.plan_start[i], timeline.plan_end[i])
        stall = timeline.stalls[i]
        if stall > 0.0:
            slice_event(
                f"stall {i}", 2, timeline.exec_start[i] - stall,
                timeline.exec_start[i],
            )
    trace: Dict = {"traceEvents": events, "displayTimeUnit": "ms"}
    if clock_origin is not None:
        trace["clockOrigin"] = clock_origin
    return trace


def merge_chrome_traces(
    traces,
    labels: Optional[List[Optional[str]]] = None,
    time_scale: float = 1e6,
) -> Dict:
    """Merge several Chrome traces onto one shared epoch.

    Each input is a trace dict from :func:`to_chrome_trace`,
    :func:`overlap_chrome_trace`, or
    :meth:`repro.obs.trace.Tracer.to_chrome_trace`.  Traces that carry
    a ``clockOrigin`` (the ``time.perf_counter()`` value of their local
    t=0) are rebased onto the earliest such origin, so *measured*
    traces from the same process tree align exactly; traces without
    one (e.g. simulated executions, whose clock is simulated seconds)
    keep their own t=0 at the shared epoch.  ``time_scale`` must match
    the scale the inputs were exported with.

    Process ids are re-namespaced to disjoint ranges (the simulator
    uses ``pid = device``, the overlap lane ``pid = 0`` — merged
    verbatim they would collide).  ``labels``, if given, prefixes each
    trace's process names so the lanes stay identifiable in Perfetto.
    """
    traces = list(traces)
    if labels is not None and len(labels) != len(traces):
        raise ValueError("labels must match traces one-to-one")
    origins = [trace.get("clockOrigin") for trace in traces]
    known = [origin for origin in origins if origin is not None]
    epoch = min(known) if known else 0.0
    merged: List[Dict] = []
    pid_base = 0
    for index, trace in enumerate(traces):
        origin = origins[index]
        shift = (origin - epoch) * time_scale if origin is not None else 0.0
        label = labels[index] if labels else None
        events = trace.get("traceEvents", [])
        pid_map: Dict[int, int] = {}
        for pid in sorted({event.get("pid", 0) for event in events}):
            pid_map[pid] = pid_base + len(pid_map)
        pid_base += max(len(pid_map), 1)
        for event in events:
            out = dict(event)
            out["pid"] = pid_map.get(event.get("pid", 0), pid_base - 1)
            if "ts" in out:
                out["ts"] = out["ts"] + shift
            if (
                label
                and out.get("ph") == "M"
                and out.get("name") == "process_name"
            ):
                args = dict(out.get("args", {}))
                args["name"] = f"{label}: {args.get('name', '')}".rstrip(": ")
                out["args"] = args
            merged.append(out)
    return {"traceEvents": merged, "displayTimeUnit": "ms"}


def _paint(
    line: List[str], start: float, end: float, total: float, char: str
) -> None:
    width = len(line)
    if total <= 0:
        return
    first = int(start / total * width)
    last = max(int(end / total * width), first + 1)
    for i in range(first, min(last, width)):
        if line[i] == ".":
            line[i] = char
        elif line[i] != char:
            line[i] = _OVERLAP_CHAR


def ascii_gantt(result: TimingResult, width: int = 72,
                max_devices: Optional[int] = None) -> str:
    """Render per-device timelines as an ASCII Gantt chart.

    ``#`` computation, ``=`` communication, ``-`` stall, ``X``
    computation/communication overlap, ``.`` idle.  The chart is
    normalized to the iteration time, so bars are directly comparable
    across devices.
    """
    total = result.iteration_time
    lines = [
        f"iteration {total * 1e3:.3f} ms  "
        f"(# compute, = comm, X overlap, - stall, . idle)"
    ]
    devices = sorted(result.devices)
    if max_devices is not None:
        devices = devices[:max_devices]
    for device in devices:
        timing = result.devices[device]
        line = ["."] * width
        for start, end in timing.compute_intervals:
            _paint(line, start, end, total, "#")
        for start, end in timing.comm_intervals:
            _paint(line, start, end, total, "=")
        for name, lane, start, end in timing.events:
            if lane == "stall":
                _paint(line, start, end, total, "-")
        busy = timing.compute_time + timing.exposed_comm
        lines.append(
            f"dev{device:>3} |{''.join(line)}| "
            f"{busy / total * 100 if total else 0:5.1f}% busy"
        )
    return "\n".join(lines)
