"""Timeline export of simulated executions.

The timing simulator records a labeled event stream per device
(attention kernels with tile counts, reductions, transfers with sizes
and peers, stalls).  This module renders that stream two ways:

* **Chrome trace JSON** (:func:`to_chrome_trace` /
  :func:`write_chrome_trace`) — load the file into ``chrome://tracing``
  or Perfetto, the same workflow the paper uses with NVIDIA Nsight
  Systems for Fig. 22;
* **ASCII Gantt chart** (:func:`ascii_gantt`) — a terminal rendering
  where overlap between computation and communication (the quantity
  Fig. 22 decomposes) is directly visible.

It also renders the *planning* pipeline:
:func:`overlap_chrome_trace` turns a
:class:`~repro.core.pool.PlanningTimeline` — analytic
(:func:`~repro.core.pool.simulate_planning_overlap`) or measured
(:meth:`repro.pipeline.OverlapStats.timeline`) — into the same trace
format, one lane for execution and one for planning, with stalls
called out, so the §6.1 overlap claim is inspectable in Perfetto next
to the execution traces.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .timing import TimingResult

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "ascii_gantt",
    "overlap_chrome_trace",
]

_LANES = ("compute", "comm", "stall")
_LANE_CHAR = {"compute": "#", "comm": "=", "stall": "-"}
_OVERLAP_CHAR = "X"


def to_chrome_trace(result: TimingResult, time_scale: float = 1e6) -> Dict:
    """Convert a :class:`TimingResult` into Chrome trace-event JSON.

    One process per device; one thread per lane (compute / comm /
    stall).  ``time_scale`` converts simulated seconds into the
    microseconds the trace format expects.
    """
    events: List[Dict] = []
    for device, timing in sorted(result.devices.items()):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": device,
                "args": {"name": f"device {device}"},
            }
        )
        for tid, lane in enumerate(_LANES):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": device,
                    "tid": tid,
                    "args": {"name": lane},
                }
            )
        for name, lane, start, end in timing.events:
            events.append(
                {
                    "name": name,
                    "cat": lane,
                    "ph": "X",
                    "pid": device,
                    "tid": _LANES.index(lane),
                    "ts": start * time_scale,
                    "dur": max(end - start, 0.0) * time_scale,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(result: TimingResult, path: str,
                       time_scale: float = 1e6) -> None:
    """Write the Chrome trace of ``result`` to ``path`` (JSON)."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(result, time_scale=time_scale), handle)


def overlap_chrome_trace(timeline, time_scale: float = 1e6) -> Dict:
    """Chrome trace of a planning/execution overlap timeline.

    ``timeline`` is any object with ``exec_start``/``exec_end``/
    ``plan_start``/``plan_end``/``stalls`` per-iteration lists (the
    :class:`~repro.core.pool.PlanningTimeline` shape).  Lane 0 holds
    execution slices, lane 1 planning slices, lane 2 the stalls —
    exposed planning the pipeline failed to hide.
    """
    events: List[Dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "args": {"name": "planning pipeline"},
        }
    ]
    lanes = ("execution", "planning", "stall")
    for tid, lane in enumerate(lanes):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": lane},
            }
        )

    def slice_event(name, tid, start, end):
        events.append(
            {
                "name": name,
                "cat": lanes[tid],
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": start * time_scale,
                "dur": max(end - start, 0.0) * time_scale,
            }
        )

    iterations = len(timeline.exec_start)
    for i in range(iterations):
        slice_event(f"exec {i}", 0, timeline.exec_start[i], timeline.exec_end[i])
        slice_event(f"plan {i}", 1, timeline.plan_start[i], timeline.plan_end[i])
        stall = timeline.stalls[i]
        if stall > 0.0:
            slice_event(
                f"stall {i}", 2, timeline.exec_start[i] - stall,
                timeline.exec_start[i],
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def _paint(
    line: List[str], start: float, end: float, total: float, char: str
) -> None:
    width = len(line)
    if total <= 0:
        return
    first = int(start / total * width)
    last = max(int(end / total * width), first + 1)
    for i in range(first, min(last, width)):
        if line[i] == ".":
            line[i] = char
        elif line[i] != char:
            line[i] = _OVERLAP_CHAR


def ascii_gantt(result: TimingResult, width: int = 72,
                max_devices: Optional[int] = None) -> str:
    """Render per-device timelines as an ASCII Gantt chart.

    ``#`` computation, ``=`` communication, ``-`` stall, ``X``
    computation/communication overlap, ``.`` idle.  The chart is
    normalized to the iteration time, so bars are directly comparable
    across devices.
    """
    total = result.iteration_time
    lines = [
        f"iteration {total * 1e3:.3f} ms  "
        f"(# compute, = comm, X overlap, - stall, . idle)"
    ]
    devices = sorted(result.devices)
    if max_devices is not None:
        devices = devices[:max_devices]
    for device in devices:
        timing = result.devices[device]
        line = ["."] * width
        for start, end in timing.compute_intervals:
            _paint(line, start, end, total, "#")
        for start, end in timing.comm_intervals:
            _paint(line, start, end, total, "=")
        for name, lane, start, end in timing.events:
            if lane == "stall":
                _paint(line, start, end, total, "-")
        busy = timing.compute_time + timing.exposed_comm
        lines.append(
            f"dev{device:>3} |{''.join(line)}| "
            f"{busy / total * 100 if total else 0:5.1f}% busy"
        )
    return "\n".join(lines)
