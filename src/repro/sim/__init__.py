"""Cluster specification, timing simulation and model cost."""

from .cluster import (
    ClusterEvent,
    ClusterEventSource,
    ClusterSpec,
    E2E_CLUSTER,
    MICRO_BENCH_CLUSTER,
)
from .memory import MemoryReport, plan_memory
from .modelcost import E2EResult, GPT_8B, ModelSpec, e2e_iteration_time
from .timing import DeviceTiming, TimingResult, simulate_plan
from .trace import (
    ascii_gantt,
    merge_chrome_traces,
    overlap_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "ascii_gantt",
    "merge_chrome_traces",
    "overlap_chrome_trace",
    "to_chrome_trace",
    "write_chrome_trace",
    "ClusterSpec",
    "ClusterEvent",
    "ClusterEventSource",
    "E2E_CLUSTER",
    "MICRO_BENCH_CLUSTER",
    "ModelSpec",
    "GPT_8B",
    "E2EResult",
    "e2e_iteration_time",
    "DeviceTiming",
    "TimingResult",
    "simulate_plan",
    "MemoryReport",
    "plan_memory",
]
