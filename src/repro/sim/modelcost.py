"""End-to-end iteration cost model for transformer training (§7.2).

The paper's end-to-end numbers combine (a) distributed attention —
where DCP and the baselines differ — with (b) *context-independent*
work (QKVO projections, MLP, norms, embedding/loss) and gradient
synchronization, which §7.2 notes is "similar for both DCP and the MLM
baseline".  This module prices (b) analytically from per-device token
counts, and composes it with the attention timing simulator to produce
full-iteration times and the Fig. 22 decomposition.

Model defaults follow the paper's 8B GPT (Llama3-8B shape): 32 layers,
hidden 4096, 32 heads, 8 KV groups, head dim 128, FFN 14336, with 4-way
tensor parallelism inside a node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .cluster import ClusterSpec
from .timing import TimingResult, simulate_plan

__all__ = ["ModelSpec", "GPT_8B", "e2e_iteration_time", "E2EResult"]


@dataclass(frozen=True)
class ModelSpec:
    """Transformer shape for the analytic cost model."""

    num_layers: int = 32
    hidden: int = 4096
    num_q_heads: int = 32
    num_kv_groups: int = 8
    head_dim: int = 128
    ffn_hidden: int = 14336
    vocab: int = 128256
    tensor_parallel: int = 4
    dtype_bytes: int = 2

    def linear_flops_per_token(self) -> float:
        """Forward FLOPs/token of context-independent ops, one layer."""
        kv_dim = self.num_kv_groups * self.head_dim
        qkv = 2 * self.hidden * (self.hidden + 2 * kv_dim)
        out_proj = 2 * self.hidden * self.hidden
        mlp = 3 * 2 * self.hidden * self.ffn_hidden  # SwiGLU: three mats
        return float(qkv + out_proj + mlp)

    def head_flops_per_token(self) -> float:
        """Forward FLOPs/token of embedding + LM head."""
        return float(2 * self.hidden * self.vocab)

    def parameter_count(self) -> float:
        per_layer = (
            self.linear_flops_per_token() / 2.0
        )  # FLOPs = 2 * params for matmuls
        return per_layer * self.num_layers + self.hidden * self.vocab


#: The paper's end-to-end model (§7.2 "Model Spec").
GPT_8B = ModelSpec()


@dataclass
class E2EResult:
    """Full-iteration timing with the paper's decomposition."""

    iteration_time: float
    attention_forward: TimingResult
    attention_backward: TimingResult
    others_time: float
    grad_sync_time: float
    num_layers: int

    def breakdown(self) -> Dict[str, float]:
        """Fig. 22-style stacked decomposition (seconds)."""
        fw = self.attention_forward.breakdown()
        bw = self.attention_backward.breakdown()
        layers = self.num_layers
        return {
            "others": self.others_time + self.grad_sync_time,
            "non_ovlp_attn": layers
            * (fw["non_ovlp_attn"] + bw["non_ovlp_attn"]),
            "overlap": layers * (fw["overlap"] + bw["overlap"]),
            "non_ovlp_comm": layers
            * (fw["non_ovlp_comm"] + bw["non_ovlp_comm"]),
            "total": self.iteration_time,
        }


def _others_time(
    model: ModelSpec,
    tokens_per_device: np.ndarray,
    cluster: ClusterSpec,
) -> float:
    """Forward+backward context-independent compute on the critical device."""
    max_tokens = float(tokens_per_device.max()) if len(tokens_per_device) else 0.0
    per_token = (
        model.num_layers * model.linear_flops_per_token()
        + model.head_flops_per_token()
    ) / model.tensor_parallel
    forward = max_tokens * per_token / cluster.effective_flops()
    return 3.0 * forward  # backward of linear layers costs ~2x forward


def _grad_sync_time(model: ModelSpec, cluster: ClusterSpec) -> float:
    """Exposed (non-overlapped) gradient-synchronization time.

    Gradients are ring-allreduced across all CP ranks.  Megatron
    overlaps almost all of this with the backward pass; the exposure
    factor models the non-hidden tail.
    """
    exposure = 0.08
    ranks = cluster.num_devices
    if ranks <= 1:
        return 0.0
    grad_bytes = model.parameter_count() * model.dtype_bytes / model.tensor_parallel
    ring = 2.0 * grad_bytes * (ranks - 1) / ranks / cluster.inter_bandwidth
    return exposure * ring


def e2e_iteration_time(
    plan,
    model: Optional[ModelSpec] = None,
    cluster: Optional[ClusterSpec] = None,
    tokens_per_device: Optional[np.ndarray] = None,
) -> E2EResult:
    """Price one full training iteration around an attention plan.

    The attention plan covers one layer; the iteration runs
    ``model.num_layers`` of them forward and backward, plus
    context-independent work and gradient sync.
    """
    model = model or GPT_8B
    cluster = cluster or plan.cluster

    if tokens_per_device is None:
        counts = np.zeros(cluster.num_devices, dtype=np.int64)
        for device, device_plan in plan.device_plans.items():
            counts[device] = sum(ts.tokens for ts in device_plan.local_slices)
        tokens_per_device = counts

    forward = simulate_plan(plan, cluster, backward=False)
    backward = simulate_plan(plan, cluster, backward=True)
    attention_total = model.num_layers * (
        forward.iteration_time + backward.iteration_time
    )
    others = _others_time(model, tokens_per_device, cluster)
    sync = _grad_sync_time(model, cluster)
    return E2EResult(
        iteration_time=attention_total + others + sync,
        attention_forward=forward,
        attention_backward=backward,
        others_time=others,
        grad_sync_time=sync,
        num_layers=model.num_layers,
    )
