"""RLHF/DPO-style dataset generation with per-sequence masks.

The paper stresses that for shared-question and causal-blockwise masks
"the shape of the attention mask is determined not only by the model
design, but also by the input data" (§2.4) — every sequence carries its
own mask.  This module generates such data: each sample is a question
paired with a variable number of candidate answers of variable lengths,
and its mask is built from those lengths (the paper's ``mask_fn``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..blocks import BatchSpec, SequenceSpec
from ..masks import SharedQuestionMask

__all__ = ["RlhfSample", "sample_rlhf_batches"]


@dataclass(frozen=True)
class RlhfSample:
    """One prompt with candidate answers."""

    question_len: int
    answer_lens: Tuple[int, ...]

    @property
    def total_len(self) -> int:
        return self.question_len + sum(self.answer_lens)

    def mask(self) -> SharedQuestionMask:
        """The sample's shared-question mask (uniform-fraction model).

        :class:`SharedQuestionMask` parameterizes answers by a common
        fraction; we use the mean answer share, which preserves the
        mask's structure (shared prefix + mutually-invisible answers).
        """
        num_answers = len(self.answer_lens)
        fraction = sum(self.answer_lens) / self.total_len / num_answers
        # Keep strictly inside the validity range.
        fraction = min(max(fraction, 1e-3), (1.0 - 1e-3) / num_answers)
        return SharedQuestionMask(
            num_answers=num_answers, answer_fraction=fraction
        )


def sample_rlhf_batches(
    num_batches: int,
    token_budget: int = 131072,
    mean_question: int = 2048,
    mean_answer: int = 1024,
    max_answers: int = 6,
    seed: int = 0,
) -> List[BatchSpec]:
    """Generate batches of RLHF samples, each with its own mask.

    Question and answer lengths are lognormal; the number of candidate
    answers per question is uniform in ``[2, max_answers]``.
    """
    if num_batches < 1 or token_budget < 8:
        raise ValueError("need at least one batch and a sane budget")
    rng = np.random.default_rng(seed)
    batches: List[BatchSpec] = []
    while len(batches) < num_batches:
        sequences: List[SequenceSpec] = []
        used = 0
        while True:
            num_answers = int(rng.integers(2, max_answers + 1))
            question = max(int(rng.lognormal(np.log(mean_question), 0.6)), 8)
            answers = tuple(
                max(int(rng.lognormal(np.log(mean_answer), 0.6)), 4)
                for _ in range(num_answers)
            )
            sample = RlhfSample(question_len=question, answer_lens=answers)
            length = min(sample.total_len, token_budget)
            if sequences and used + length > token_budget:
                break
            sequences.append(SequenceSpec(length, sample.mask()))
            used += length
            if used >= token_budget:
                break
        batches.append(BatchSpec(tuple(sequences)))
    return batches
