"""Packing strategies for variable-length batches (paper §8 related work).

Hierarchical Balance Packing [48] and WLB-LLM [45] attack the same
input dynamism as DCP from the packing side: *which sequences share a
batch* determines how balanced any downstream parallelism can be.
This module implements the packing-strategy space so the reproduction
can measure how much of the problem packing alone solves and where
DCP's placement-side dynamism still pays:

* :func:`pack_sequential` — the baseline greedy packer (dataset order);
* :func:`pack_first_fit_decreasing` — classic FFD bin packing on
  tokens, minimizing the number of batches;
* :func:`pack_workload_balanced` — WLB-style: balance *attention
  FLOPs* (quadratic in length) across a fixed number of batches, so no
  batch is compute-dominated by one long sequence;
* :func:`pack_length_grouped` — HBP-style: group similar lengths so
  static CP degrees fit each batch well.

Every offline packer above also has a **streaming variant** built on
:class:`StreamPacker` — a bounded reordering buffer over the single
authoritative loop in :func:`~repro.data.batching.stream_pack_select`:

* :func:`stream_pack` — sequential, re-exported from
  :mod:`repro.data.batching` (any policy at ``buffer=1``);
* :func:`stream_pack_workload_balanced` —
  :class:`WorkloadBalancedPolicy`, packs each batch toward the running
  balanced-workload target;
* :func:`stream_pack_length_grouped` — :class:`LengthGroupedPolicy`,
  always places the shortest buffered sequence; at unbounded buffer it
  reproduces :func:`pack_length_grouped` exactly.

All packers return ``List[List[int]]`` like
:func:`~repro.data.batching.pack_batches` (streaming variants yield
the same batches lazily) and compose with
:func:`~repro.data.batching.batches_to_specs`.  Registries:
:data:`PACKERS` (offline, materialized) and :data:`STREAM_PACKERS`
(streaming factories taking ``buffer=``).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from .batching import (
    PackState,
    batches_to_specs,
    pack_batches,
    stream_pack,
    stream_pack_select,
)

__all__ = [
    "pack_sequential",
    "pack_first_fit_decreasing",
    "pack_workload_balanced",
    "pack_length_grouped",
    "stream_pack",
    "stream_pack_workload_balanced",
    "stream_pack_length_grouped",
    "StreamPacker",
    "PackingPolicy",
    "SequentialPolicy",
    "WorkloadBalancedPolicy",
    "LengthGroupedPolicy",
    "stream_packed_specs",
    "packing_stats",
    "PACKERS",
    "STREAM_PACKERS",
]

#: Default reordering-buffer size for streaming packers: deep enough to
#: matter, shallow enough that the packer stays O(1) memory per step.
DEFAULT_BUFFER = 16


def _clean(lengths: Sequence[int], max_seqlen: Optional[int]) -> List[int]:
    out = []
    for raw in lengths:
        length = int(raw)
        if max_seqlen is not None:
            length = min(length, max_seqlen)
        if length >= 1:
            out.append(length)
    return out


def pack_sequential(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """Greedy packing in dataset order (the paper's setup)."""
    return pack_batches(lengths, token_budget, max_seqlen)


def pack_first_fit_decreasing(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """First-fit-decreasing bin packing on token counts.

    Minimizes batch count (within the classic 11/9 OPT guarantee), so
    fewer iterations process the same data — but ignores attention
    workload, so batches can mix one huge sequence with many tiny ones.
    """
    if token_budget < 1:
        raise ValueError("token budget must be positive")
    cleaned = sorted(_clean(lengths, max_seqlen), reverse=True)
    batches: List[List[int]] = []
    room: List[int] = []
    for length in cleaned:
        length = min(length, token_budget)
        for index, free in enumerate(room):
            if length <= free:
                batches[index].append(length)
                room[index] -= length
                break
        else:
            batches.append([length])
            room.append(token_budget - length)
    return batches


def pack_workload_balanced(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """WLB-LLM-style packing: balance attention FLOPs across batches.

    The batch count is fixed to what sequential packing needs (same
    iteration count), then sequences are LPT-assigned by quadratic
    workload subject to the token budget; overflow opens a new batch.
    This is the offline balance reference the streaming variant
    (:func:`stream_pack_workload_balanced`) approaches as its buffer
    grows.
    """
    if token_budget < 1:
        raise ValueError("token budget must be positive")
    cleaned = [
        min(length, token_budget) for length in _clean(lengths, max_seqlen)
    ]
    if not cleaned:
        return []
    num_batches = max(len(pack_batches(cleaned, token_budget)), 1)
    order = sorted(range(len(cleaned)), key=lambda i: cleaned[i],
                   reverse=True)
    batches: List[List[int]] = [[] for _ in range(num_batches)]
    tokens = np.zeros(num_batches, dtype=np.int64)
    work = np.zeros(num_batches, dtype=np.float64)
    for index in order:
        length = cleaned[index]
        candidates = [
            b for b in range(num_batches)
            if tokens[b] + length <= token_budget
        ]
        if not candidates:
            batches.append([])
            tokens = np.append(tokens, 0)
            work = np.append(work, 0.0)
            candidates = [len(batches) - 1]
        target = min(candidates, key=lambda b: work[b])
        batches[target].append(length)
        tokens[target] += length
        work[target] += float(length) ** 2
    return [batch for batch in batches if batch]


class PackingPolicy:
    """Scoring policy for :class:`StreamPacker` selection.

    Subclasses implement :meth:`select`, choosing which of the fitting
    buffered sequences joins the open batch next.  Policies are
    stateless between :class:`StreamPacker` runs — all running state
    lives in the :class:`~repro.data.batching.PackState` the loop
    passes in — so one policy instance can drive many streams.
    """

    #: Registry key and display name of the policy.
    name = "abstract"

    def select(self, state: PackState, candidates: Sequence[int]) -> int:
        """Return the index of the candidate to place next.

        ``candidates`` holds the fitting buffered lengths in arrival
        order and is never empty; implementations must be
        deterministic functions of ``(state, candidates)``.
        """
        raise NotImplementedError


class SequentialPolicy(PackingPolicy):
    """FIFO selection: always place the oldest buffered sequence.

    With this policy the reordering buffer is inert — the packer is
    :func:`stream_pack` at every buffer size, which makes it the
    control row of the scenario matrix.
    """

    name = "sequential"

    def select(self, state: PackState, candidates: Sequence[int]) -> int:
        """Pick the oldest (first-arrived) fitting candidate."""
        return 0


class WorkloadBalancedPolicy(PackingPolicy):
    """Pack each batch toward the running balanced-workload target.

    The target is the total quadratic workload seen so far divided by
    the number of budget-sized batches that many tokens fill
    (:meth:`~repro.data.batching.PackState.target_work`) — the best
    per-batch workload an offline balancer could achieve on the prefix.
    Among fitting candidates, prefer the longest one that keeps the
    open batch at or under target (fill heavy work early); once every
    candidate overshoots, take the smallest overshoot.  Ties go to the
    oldest candidate so the packer is deterministic.
    """

    name = "workload_balanced"

    def select(self, state: PackState, candidates: Sequence[int]) -> int:
        """Pick the candidate that best tracks the workload target."""
        target = state.target_work()
        best = 0
        best_key = None
        for index, length in enumerate(candidates):
            capped = min(length, state.token_budget)
            projected = state.batch_work + float(capped) ** 2
            if projected <= target:
                key = (0, -capped)
            else:
                key = (1, projected - target)
            if best_key is None or key < best_key:
                best, best_key = index, key
        return best


class LengthGroupedPolicy(PackingPolicy):
    """Always place the shortest buffered sequence (HBP-style groups).

    Short sequences cluster into dense homogeneous batches while long
    ones wait in the buffer for company of their own size.  At
    unbounded buffer the emitted order is exactly the sorted stream, so
    the packer reproduces :func:`pack_length_grouped` batch for batch.
    """

    name = "length_grouped"

    def select(self, state: PackState, candidates: Sequence[int]) -> int:
        """Pick the shortest fitting candidate (oldest on ties)."""
        return min(range(len(candidates)), key=lambda i: candidates[i])


class StreamPacker:
    """Bounded-reordering-buffer streaming packer.

    Wraps the single authoritative loop
    (:func:`~repro.data.batching.stream_pack_select`) with a
    :class:`PackingPolicy` and a buffer size.  Two properties hold for
    *every* policy by construction:

    * ``buffer=1`` is exactly :func:`stream_pack` — with one pending
      sequence there is nothing to choose;
    * batches stream out as they close, so an unbounded source runs in
      O(buffer) memory and composes with
      :class:`~repro.pipeline.StreamingOverlapPipeline`.

    As ``buffer`` grows the policy sees more of the stream and the
    packing approaches the corresponding offline packer's balance
    (exactly, for :class:`LengthGroupedPolicy` at unbounded buffer).
    """

    def __init__(
        self,
        policy: PackingPolicy,
        token_budget: int = 131072,
        max_seqlen: Optional[int] = None,
        buffer: Optional[int] = DEFAULT_BUFFER,
    ) -> None:
        """Bind a policy to a budget, length cap, and buffer size.

        ``buffer=None`` means unbounded (the offline limit: the whole
        stream is materialized before the first batch closes).
        """
        if buffer is not None and buffer < 1:
            raise ValueError(
                "reordering buffer must hold at least one sequence"
            )
        self.policy = policy
        self.token_budget = token_budget
        self.max_seqlen = max_seqlen
        self.buffer = buffer

    def stream(self, lengths: Iterable[int]) -> Iterator[List[int]]:
        """Lazily pack ``lengths``, yielding each batch as it closes."""
        return stream_pack_select(
            lengths,
            self.policy.select,
            token_budget=self.token_budget,
            max_seqlen=self.max_seqlen,
            buffer=self.buffer,
        )

    def pack(self, lengths: Iterable[int]) -> List[List[int]]:
        """Materialize :meth:`stream` into a list of batches."""
        return list(self.stream(lengths))


def stream_pack_workload_balanced(
    lengths: Iterable[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
    buffer: Optional[int] = DEFAULT_BUFFER,
) -> Iterator[List[int]]:
    """Streaming workload-balanced packing over a bounded buffer.

    Online counterpart of :func:`pack_workload_balanced`: each batch is
    packed toward the running balanced-workload target using only the
    ``buffer`` pending sequences.  Equivalent to :func:`stream_pack` at
    ``buffer=1``; within ε of the offline packer's workload balance as
    the buffer grows (see ``tests/test_streaming_packers.py``).
    """
    packer = StreamPacker(
        WorkloadBalancedPolicy(), token_budget, max_seqlen, buffer
    )
    return packer.stream(lengths)


def stream_pack_length_grouped(
    lengths: Iterable[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
    buffer: Optional[int] = DEFAULT_BUFFER,
) -> Iterator[List[int]]:
    """Streaming length-grouped packing over a bounded buffer.

    Online counterpart of :func:`pack_length_grouped`: always places
    the shortest buffered sequence, clustering similar lengths.
    Equivalent to :func:`stream_pack` at ``buffer=1``; *exactly* the
    offline packer at unbounded buffer (``buffer=None``).
    """
    packer = StreamPacker(
        LengthGroupedPolicy(), token_budget, max_seqlen, buffer
    )
    return packer.stream(lengths)


def pack_length_grouped(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """HBP-style packing: sort by length so batches hold similar sizes.

    Homogeneous batches let a static CP degree fit every sequence in
    the batch; the cost is inter-batch workload variance (long-sequence
    batches are far heavier than short-sequence ones).  Implemented as
    the unbounded-buffer streaming packer, materialized — picking the
    shortest pending sequence from an unbounded buffer emits exactly
    the sorted stream.
    """
    return list(
        stream_pack_length_grouped(
            lengths, token_budget, max_seqlen, buffer=None
        )
    )


def stream_packed_specs(
    lengths: Iterable[int],
    mask,
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
    packer: Optional[StreamPacker] = None,
) -> Iterator:
    """Stream :class:`~repro.blocks.BatchSpec` straight off a packer.

    The generator the streaming overlap pipeline feeds from: each
    packed batch becomes a spec as it is emitted (``mask`` as in
    :func:`~repro.data.batching.batches_to_specs` — a shared spec or a
    ``seqlen -> mask`` callable).  ``packer`` selects the streaming
    packer (a :class:`StreamPacker`; its budget/cap override the
    keyword arguments); default is sequential :func:`stream_pack`.
    """
    if packer is None:
        batches = stream_pack(
            lengths, token_budget=token_budget, max_seqlen=max_seqlen
        )
    else:
        batches = packer.stream(lengths)
    for batch in batches:
        yield batches_to_specs([batch], mask)[0]


def packing_stats(batches: List[List[int]]) -> dict:
    """Balance metrics of a packing.

    Returns batch count, token utilization spread, and the quadratic
    workload imbalance (max/mean - 1) that governs compute balance
    under causal attention.
    """
    if not batches:
        return {
            "num_batches": 0,
            "token_imbalance": 0.0,
            "workload_imbalance": 0.0,
            "max_intra_spread": 0.0,
        }
    tokens = np.array([sum(batch) for batch in batches], dtype=np.float64)
    work = np.array(
        [sum(float(n) ** 2 for n in batch) for batch in batches],
        dtype=np.float64,
    )
    spread = max(
        (max(batch) / min(batch)) for batch in batches
    )
    return {
        "num_batches": len(batches),
        "token_imbalance": float(tokens.max() / tokens.mean() - 1.0),
        "workload_imbalance": float(work.max() / work.mean() - 1.0),
        "max_intra_spread": float(spread),
    }


#: Strategy registry for sweeps (offline, materialized packers).
PACKERS = {
    "sequential": pack_sequential,
    "ffd": pack_first_fit_decreasing,
    "workload_balanced": pack_workload_balanced,
    "length_grouped": pack_length_grouped,
}

#: Streaming-packer factories: ``name -> (token_budget, max_seqlen,
#: buffer) -> StreamPacker``.  The scenario matrix iterates this.
STREAM_PACKERS = {
    "sequential": (
        lambda token_budget=131072, max_seqlen=None, buffer=DEFAULT_BUFFER:
        StreamPacker(SequentialPolicy(), token_budget, max_seqlen, buffer)
    ),
    "workload_balanced": (
        lambda token_budget=131072, max_seqlen=None, buffer=DEFAULT_BUFFER:
        StreamPacker(
            WorkloadBalancedPolicy(), token_budget, max_seqlen, buffer
        )
    ),
    "length_grouped": (
        lambda token_budget=131072, max_seqlen=None, buffer=DEFAULT_BUFFER:
        StreamPacker(LengthGroupedPolicy(), token_budget, max_seqlen, buffer)
    ),
}
