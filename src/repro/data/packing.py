"""Packing strategies for variable-length batches (paper §8 related work).

Hierarchical Balance Packing [48] and WLB-LLM [45] attack the same
input dynamism as DCP from the packing side: *which sequences share a
batch* determines how balanced any downstream parallelism can be.
This module implements the packing-strategy space so the reproduction
can measure how much of the problem packing alone solves and where
DCP's placement-side dynamism still pays:

* :func:`pack_sequential` — the baseline greedy packer (dataset order);
* :func:`pack_first_fit_decreasing` — classic FFD bin packing on
  tokens, minimizing the number of batches;
* :func:`pack_workload_balanced` — WLB-style: balance *attention
  FLOPs* (quadratic in length) across a fixed number of batches, so no
  batch is compute-dominated by one long sequence;
* :func:`pack_length_grouped` — HBP-style: group similar lengths so
  static CP degrees fit each batch well.

All packers return ``List[List[int]]`` like
:func:`~repro.data.batching.pack_batches` and compose with
:func:`~repro.data.batching.batches_to_specs`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence

import numpy as np

from .batching import batches_to_specs, pack_batches, stream_pack

__all__ = [
    "pack_sequential",
    "pack_first_fit_decreasing",
    "pack_workload_balanced",
    "pack_length_grouped",
    "stream_pack",
    "stream_packed_specs",
    "packing_stats",
    "PACKERS",
]


def _clean(lengths: Sequence[int], max_seqlen: Optional[int]) -> List[int]:
    out = []
    for raw in lengths:
        length = int(raw)
        if max_seqlen is not None:
            length = min(length, max_seqlen)
        if length >= 1:
            out.append(length)
    return out


def pack_sequential(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """Greedy packing in dataset order (the paper's setup)."""
    return pack_batches(lengths, token_budget, max_seqlen)


def pack_first_fit_decreasing(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """First-fit-decreasing bin packing on token counts.

    Minimizes batch count (within the classic 11/9 OPT guarantee), so
    fewer iterations process the same data — but ignores attention
    workload, so batches can mix one huge sequence with many tiny ones.
    """
    if token_budget < 1:
        raise ValueError("token budget must be positive")
    cleaned = sorted(_clean(lengths, max_seqlen), reverse=True)
    batches: List[List[int]] = []
    room: List[int] = []
    for length in cleaned:
        length = min(length, token_budget)
        for index, free in enumerate(room):
            if length <= free:
                batches[index].append(length)
                room[index] -= length
                break
        else:
            batches.append([length])
            room.append(token_budget - length)
    return batches


def pack_workload_balanced(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """WLB-LLM-style packing: balance attention FLOPs across batches.

    The batch count is fixed to what sequential packing needs (same
    iteration count), then sequences are LPT-assigned by quadratic
    workload subject to the token budget; overflow opens a new batch.
    """
    if token_budget < 1:
        raise ValueError("token budget must be positive")
    cleaned = [
        min(length, token_budget) for length in _clean(lengths, max_seqlen)
    ]
    if not cleaned:
        return []
    num_batches = max(len(pack_batches(cleaned, token_budget)), 1)
    order = sorted(range(len(cleaned)), key=lambda i: cleaned[i],
                   reverse=True)
    batches: List[List[int]] = [[] for _ in range(num_batches)]
    tokens = np.zeros(num_batches, dtype=np.int64)
    work = np.zeros(num_batches, dtype=np.float64)
    for index in order:
        length = cleaned[index]
        candidates = [
            b for b in range(num_batches)
            if tokens[b] + length <= token_budget
        ]
        if not candidates:
            batches.append([])
            tokens = np.append(tokens, 0)
            work = np.append(work, 0.0)
            candidates = [len(batches) - 1]
        target = min(candidates, key=lambda b: work[b])
        batches[target].append(length)
        tokens[target] += length
        work[target] += float(length) ** 2
    return [batch for batch in batches if batch]


def pack_length_grouped(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """HBP-style packing: sort by length so batches hold similar sizes.

    Homogeneous batches let a static CP degree fit every sequence in
    the batch; the cost is inter-batch workload variance (long-sequence
    batches are far heavier than short-sequence ones).
    """
    cleaned = sorted(_clean(lengths, max_seqlen))
    return pack_batches(cleaned, token_budget, max_seqlen)


def stream_packed_specs(
    lengths: Iterable[int],
    mask,
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> Iterator:
    """Stream :class:`~repro.blocks.BatchSpec` straight off a packer.

    The generator the streaming overlap pipeline feeds from: each
    packed batch becomes a spec as it is emitted (``mask`` as in
    :func:`~repro.data.batching.batches_to_specs` — a shared spec or a
    ``seqlen -> mask`` callable).
    """
    for batch in stream_pack(
        lengths, token_budget=token_budget, max_seqlen=max_seqlen
    ):
        yield batches_to_specs([batch], mask)[0]


def packing_stats(batches: List[List[int]]) -> dict:
    """Balance metrics of a packing.

    Returns batch count, token utilization spread, and the quadratic
    workload imbalance (max/mean - 1) that governs compute balance
    under causal attention.
    """
    if not batches:
        return {
            "num_batches": 0,
            "token_imbalance": 0.0,
            "workload_imbalance": 0.0,
            "max_intra_spread": 0.0,
        }
    tokens = np.array([sum(batch) for batch in batches], dtype=np.float64)
    work = np.array(
        [sum(float(n) ** 2 for n in batch) for batch in batches],
        dtype=np.float64,
    )
    spread = max(
        (max(batch) / min(batch)) for batch in batches
    )
    return {
        "num_batches": len(batches),
        "token_imbalance": float(tokens.max() / tokens.mean() - 1.0),
        "workload_imbalance": float(work.max() / work.mean() - 1.0),
        "max_intra_spread": float(spread),
    }


#: Strategy registry for sweeps.
PACKERS = {
    "sequential": pack_sequential,
    "ffd": pack_first_fit_decreasing,
    "workload_balanced": pack_workload_balanced,
    "length_grouped": pack_length_grouped,
}
