"""Token-budget batching (paper §7.1: global batch size 131072 tokens).

Sequences are taken in dataset order; each batch greedily accumulates
whole sequences until the token budget would overflow.  Sequences
longer than ``max_seqlen`` are truncated (the paper's "maximally
allowed sequence length").
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..blocks import BatchSpec
from ..masks import MaskSpec

__all__ = ["pack_batches", "batches_to_specs"]


def pack_batches(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """Pack lengths into batches of at most ``token_budget`` tokens.

    Every batch contains at least one sequence, so a single sequence at
    the cap still forms a (full) batch.
    """
    if token_budget < 1:
        raise ValueError("token budget must be positive")
    batches: List[List[int]] = []
    current: List[int] = []
    used = 0
    for raw in lengths:
        length = int(raw)
        if max_seqlen is not None:
            length = min(length, max_seqlen)
        if length < 1:
            continue
        if current and used + length > token_budget:
            batches.append(current)
            current, used = [], 0
        current.append(min(length, token_budget))
        used += current[-1]
    if current:
        batches.append(current)
    return batches


def batches_to_specs(
    batches: List[List[int]],
    mask: Union[MaskSpec, Callable[[int], MaskSpec]],
) -> List[BatchSpec]:
    """Turn packed length batches into :class:`BatchSpec` objects.

    ``mask`` is either a single spec shared by all sequences or a
    callable ``seqlen -> MaskSpec`` (the paper's ``mask_fn``, for masks
    whose shape depends on the input, like shared-question).
    """
    specs = []
    for lengths in batches:
        if callable(mask) and not isinstance(mask, MaskSpec):
            masks = [mask(int(n)) for n in lengths]
        else:
            masks = mask
        specs.append(BatchSpec.build(lengths, masks))
    return specs
