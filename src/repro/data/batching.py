"""Token-budget batching (paper §7.1: global batch size 131072 tokens).

Sequences are taken in dataset order; each batch greedily accumulates
whole sequences until the token budget would overflow.  Sequences
longer than ``max_seqlen`` are truncated (the paper's "maximally
allowed sequence length").

This module owns the **single authoritative streaming-packing loop**,
:func:`stream_pack_select`: a bounded reordering buffer of pending
sequences plus a pluggable *selection* callable that decides which
buffered sequence joins the open batch next.  Every packer in
:mod:`repro.data.packing` — sequential, workload-balanced,
length-grouped, streaming or materialized — is a thin wrapper over
this one loop, so ``pack_*``/``stream_pack_*`` consistency holds by
construction rather than by parallel implementations.
"""

from __future__ import annotations

from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Union,
)

from ..blocks import BatchSpec
from ..masks import MaskSpec

__all__ = [
    "PackState",
    "pack_batches",
    "stream_pack",
    "stream_pack_select",
    "batches_to_specs",
]


class PackState:
    """Running state the packing loop exposes to selection policies.

    Attributes
    ----------
    token_budget:
        The batch token budget the loop packs against.
    batch:
        Lengths already placed in the open batch (read-only by
        convention).
    used:
        Tokens already placed in the open batch.
    batch_work:
        Quadratic attention workload ``sum(l**2)`` of the open batch —
        maintained incrementally so workload-aware policies are O(1)
        per selection.
    tokens_entered / work_entered:
        Totals over every sequence that ever entered the buffer
        (placed, pending, or in the open batch), with lengths capped at
        the budget exactly as they will be placed.  Policies use these
        to estimate per-batch targets without seeing the future.
    """

    __slots__ = (
        "token_budget",
        "batch",
        "used",
        "batch_work",
        "tokens_entered",
        "work_entered",
    )

    def __init__(self, token_budget: int) -> None:
        """Initialize empty packing state for one ``token_budget``."""
        self.token_budget = token_budget
        self.batch: List[int] = []
        self.used = 0
        self.batch_work = 0.0
        self.tokens_entered = 0
        self.work_entered = 0.0

    @property
    def room(self) -> int:
        """Tokens still available in the open batch."""
        return self.token_budget - self.used

    def target_work(self) -> float:
        """Estimated balanced per-batch quadratic workload.

        Total workload seen so far divided by the number of
        budget-sized batches that many tokens fill — the target a
        workload-balancing policy packs each batch toward.
        """
        batches = max(self.tokens_entered / self.token_budget, 1.0)
        return self.work_entered / batches

    def _place(self, length: int) -> None:
        capped = min(length, self.token_budget)
        self.batch.append(capped)
        self.used += capped
        self.batch_work += float(capped) ** 2

    def _close(self) -> List[int]:
        closed = self.batch
        self.batch = []
        self.used = 0
        self.batch_work = 0.0
        return closed

    def _admit(self, length: int) -> None:
        capped = min(length, self.token_budget)
        self.tokens_entered += capped
        self.work_entered += float(capped) ** 2


#: A selection policy: given the running :class:`PackState` and the
#: *fitting* buffered candidate lengths (arrival order preserved),
#: return the index of the candidate to place next.
SelectFn = Callable[[PackState, Sequence[int]], int]


def stream_pack_select(
    lengths: Iterable[int],
    select: Optional[SelectFn] = None,
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
    buffer: Optional[int] = 1,
) -> Iterator[List[int]]:
    """The authoritative streaming-packing loop (bounded reordering).

    Consumes ``lengths`` lazily into a pending buffer of at most
    ``buffer`` sequences (``None``: unbounded — the whole stream may be
    reordered, the offline limit).  Each step, ``select`` picks which
    *fitting* buffered sequence joins the open batch; when nothing
    pending fits the remaining room, the batch closes and is yielded.
    ``select=None`` always takes the oldest pending sequence, which
    makes the loop the classic greedy packer regardless of buffer size.

    Two structural properties every policy inherits:

    * at ``buffer=1`` the pending set is a single sequence, so *any*
      policy degenerates to :func:`stream_pack` exactly;
    * batches are emitted the moment they close, so an unbounded source
      streams with O(buffer) memory and a downstream pipeline can plan
      batch 0 while the packer is still reading.

    Sequences are cleaned as in :func:`stream_pack`: truncated to
    ``max_seqlen``, dropped if shorter than one token, and capped at
    the budget when placed.
    """
    if token_budget < 1:
        raise ValueError("token budget must be positive")
    if buffer is not None and buffer < 1:
        raise ValueError("reordering buffer must hold at least one sequence")
    source = iter(lengths)
    pending: List[int] = []
    state = PackState(token_budget)
    exhausted = False
    while True:
        while not exhausted and (buffer is None or len(pending) < buffer):
            try:
                raw = next(source)
            except StopIteration:
                exhausted = True
                break
            length = int(raw)
            if max_seqlen is not None:
                length = min(length, max_seqlen)
            if length < 1:
                continue
            pending.append(length)
            state._admit(length)
        if not pending:
            break
        if state.batch:
            fitting = [
                i for i, length in enumerate(pending)
                if state.used + length <= token_budget
            ]
            if not fitting:
                yield state._close()
                continue
        else:
            fitting = list(range(len(pending)))
        if select is None or len(fitting) == 1:
            position = fitting[0]
        else:
            candidates = [pending[i] for i in fitting]
            position = fitting[select(state, candidates)]
        state._place(pending.pop(position))
    if state.batch:
        yield state._close()


def stream_pack(
    lengths: Iterable[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> Iterator[List[int]]:
    """Online packing: yield each batch the moment its budget closes.

    The sequential (arrival-order) instance of
    :func:`stream_pack_select` — consumes ``lengths`` lazily (an
    unbounded source is fine), so a downstream streaming pipeline can
    start planning the first batch while the packer is still reading
    the stream.  :func:`pack_batches` is the materialized form of this
    generator.
    """
    return stream_pack_select(
        lengths, None, token_budget=token_budget, max_seqlen=max_seqlen
    )


def pack_batches(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """Pack lengths into batches of at most ``token_budget`` tokens.

    Every batch contains at least one sequence, so a single sequence at
    the cap still forms a (full) batch.
    """
    return list(stream_pack(lengths, token_budget, max_seqlen))


def batches_to_specs(
    batches: List[List[int]],
    mask: Union[MaskSpec, Callable[[int], MaskSpec]],
) -> List[BatchSpec]:
    """Turn packed length batches into :class:`BatchSpec` objects.

    ``mask`` is either a single spec shared by all sequences or a
    callable ``seqlen -> MaskSpec`` (the paper's ``mask_fn``, for masks
    whose shape depends on the input, like shared-question).
    """
    specs = []
    for lengths in batches:
        if callable(mask) and not isinstance(mask, MaskSpec):
            masks = [mask(int(n)) for n in lengths]
        else:
            masks = mask
        specs.append(BatchSpec.build(lengths, masks))
    return specs
