"""Token-budget batching (paper §7.1: global batch size 131072 tokens).

Sequences are taken in dataset order; each batch greedily accumulates
whole sequences until the token budget would overflow.  Sequences
longer than ``max_seqlen`` are truncated (the paper's "maximally
allowed sequence length").
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Union


from ..blocks import BatchSpec
from ..masks import MaskSpec

__all__ = ["pack_batches", "stream_pack", "batches_to_specs"]


def stream_pack(
    lengths: Iterable[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> Iterator[List[int]]:
    """Online packing: yield each batch the moment its budget closes.

    The single authoritative greedy-packing loop — consumes ``lengths``
    lazily (an unbounded source is fine), so a downstream streaming
    pipeline can start planning the first batch while the packer is
    still reading the stream.  :func:`pack_batches` is the materialized
    form of this generator.
    """
    if token_budget < 1:
        raise ValueError("token budget must be positive")
    current: List[int] = []
    used = 0
    for raw in lengths:
        length = int(raw)
        if max_seqlen is not None:
            length = min(length, max_seqlen)
        if length < 1:
            continue
        if current and used + length > token_budget:
            yield current
            current, used = [], 0
        current.append(min(length, token_budget))
        used += current[-1]
    if current:
        yield current


def pack_batches(
    lengths: Sequence[int],
    token_budget: int = 131072,
    max_seqlen: Optional[int] = None,
) -> List[List[int]]:
    """Pack lengths into batches of at most ``token_budget`` tokens.

    Every batch contains at least one sequence, so a single sequence at
    the cap still forms a (full) batch.
    """
    return list(stream_pack(lengths, token_budget, max_seqlen))


def batches_to_specs(
    batches: List[List[int]],
    mask: Union[MaskSpec, Callable[[int], MaskSpec]],
) -> List[BatchSpec]:
    """Turn packed length batches into :class:`BatchSpec` objects.

    ``mask`` is either a single spec shared by all sequences or a
    callable ``seqlen -> MaskSpec`` (the paper's ``mask_fn``, for masks
    whose shape depends on the input, like shared-question).
    """
    specs = []
    for lengths in batches:
        if callable(mask) and not isinstance(mask, MaskSpec):
            masks = [mask(int(n)) for n in lengths]
        else:
            masks = mask
        specs.append(BatchSpec.build(lengths, masks))
    return specs
