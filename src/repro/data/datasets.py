"""Synthetic long-context datasets (substitute for LongAlign / LDC).

The paper's evaluation depends on the *sequence-length distribution* of
its two datasets (Fig. 2), not on token content:

* **LongDataCollections** [41]: skewed and long-tailed with many short
  sequences — most mass below ~8K tokens, a thin tail to 131072.
* **LongAlign** [5]: longer average length and fewer short sequences,
  same long-tailed shape.

We model both as capped lognormal distributions whose parameters were
chosen to match the qualitative shape of Fig. 2 (mode of LDC near 2-4K,
mode of LongAlign near 8-16K, both capped at 131072).  Generation is
deterministic given a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = [
    "LengthDistribution",
    "LONGALIGN",
    "LONG_DATA_COLLECTIONS",
    "sample_lengths",
    "scale_lengths",
]

#: Cap used throughout the paper (tokens).
MAX_SEQLEN = 131072


@dataclass(frozen=True)
class LengthDistribution:
    """A capped lognormal sequence-length distribution."""

    name: str
    log_mean: float
    log_sigma: float
    min_len: int = 32
    cap: int = MAX_SEQLEN

    def sample(self, n: int, seed: int = 0) -> np.ndarray:
        rng = np.random.default_rng(seed)
        lengths = rng.lognormal(self.log_mean, self.log_sigma, size=n)
        return np.clip(lengths.astype(np.int64), self.min_len, self.cap)

    def mean_length(self, n: int = 20000, seed: int = 0) -> float:
        return float(self.sample(n, seed).mean())

    @staticmethod
    def fit(lengths, name: str = "fitted", min_len: int = 32,
            cap: int = MAX_SEQLEN) -> "LengthDistribution":
        """Fit a capped lognormal to observed sequence lengths.

        Lets users model *their* dataset's dynamism: pass real lengths,
        get a distribution pluggable everywhere the synthetic ones are
        consumed.  Maximum likelihood in log space; capped values are
        included as-is (mild bias, matching the paper's capped
        histograms in Fig. 2).
        """
        values = np.asarray(list(lengths), dtype=np.float64)
        if values.size == 0:
            raise ValueError("need at least one length to fit")
        if np.any(values < 1):
            raise ValueError("lengths must be positive")
        logs = np.log(values)
        return LengthDistribution(
            name=name,
            log_mean=float(logs.mean()),
            log_sigma=max(float(logs.std()), 1e-6),
            min_len=min_len,
            cap=cap,
        )


#: LongAlign-like: longer average, fewer short sequences (Fig. 2).
LONGALIGN = LengthDistribution(
    name="longalign", log_mean=np.log(9000.0), log_sigma=0.95
)

#: LongDataCollections-like: many short sequences, long tail (Fig. 2).
LONG_DATA_COLLECTIONS = LengthDistribution(
    name="longdatacollections", log_mean=np.log(3000.0), log_sigma=1.25
)

_BY_NAME = {
    "longalign": LONGALIGN,
    "longdatacollections": LONG_DATA_COLLECTIONS,
}


def sample_lengths(dataset: str, n: int, seed: int = 0) -> np.ndarray:
    """Sample ``n`` sequence lengths from a named dataset distribution."""
    try:
        dist = _BY_NAME[dataset]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ValueError(f"unknown dataset {dataset!r}; known: {known}") from None
    return dist.sample(n, seed)


def scale_lengths(
    lengths: np.ndarray, scale: float, cap: Optional[int] = MAX_SEQLEN
) -> np.ndarray:
    """Multiply lengths by ``scale`` (paper §7.1: 0.5/1/2/4), then cap."""
    scaled = np.maximum((lengths * scale).astype(np.int64), 1)
    if cap is not None:
        scaled = np.minimum(scaled, cap)
    return scaled
