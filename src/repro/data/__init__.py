"""Synthetic datasets and batching."""

from .batching import batches_to_specs, pack_batches
from .packing import (
    PACKERS,
    pack_first_fit_decreasing,
    pack_length_grouped,
    pack_sequential,
    pack_workload_balanced,
    packing_stats,
    stream_pack,
    stream_packed_specs,
)
from .rlhf import RlhfSample, sample_rlhf_batches
from .datasets import (
    LONGALIGN,
    LONG_DATA_COLLECTIONS,
    LengthDistribution,
    MAX_SEQLEN,
    sample_lengths,
    scale_lengths,
)

__all__ = [
    "batches_to_specs",
    "pack_batches",
    "PACKERS",
    "pack_sequential",
    "pack_first_fit_decreasing",
    "pack_workload_balanced",
    "pack_length_grouped",
    "packing_stats",
    "stream_pack",
    "stream_packed_specs",
    "LONGALIGN",
    "LONG_DATA_COLLECTIONS",
    "LengthDistribution",
    "MAX_SEQLEN",
    "sample_lengths",
    "scale_lengths",
    "RlhfSample",
    "sample_rlhf_batches",
]
