"""Obs CLI: ``python -m repro.obs {report,bench}``.

``report`` renders a metrics snapshot — a raw
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` JSON file or a
``BENCH_obs.json`` report — as an aligned terminal table (histograms
with count/p50/p95/p99, the plan-fetch hit/dispatch split included).

``bench`` measures tracer/metrics overhead on the Fig. 18 smoke
workload, runs the traced telemetry workload, writes ``BENCH_obs.json``
plus the merged Perfetto trace ``TRACE_obs.json``, and prints the
resulting metrics table.  ``--smoke`` is the fast CI variant (also
reachable as ``benchmarks/bench_overlap_pipeline.py --obs --smoke``,
which adds the floor gating).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from .report import load_snapshot, render_snapshot


def _cmd_report(args: argparse.Namespace) -> int:
    try:
        snapshot = load_snapshot(args.path)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 1
    if args.prefix:
        snapshot = {
            name: snap for name, snap in snapshot.items()
            if name == args.prefix or name.startswith(args.prefix + ".")
        }
    if args.json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_snapshot(snapshot))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import run_obs_bench

    report = run_obs_bench(
        smoke=args.smoke,
        repeats=args.repeats,
        trace_path=args.trace,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    if args.trace:
        print(f"wrote {args.trace}")
    print()
    print(render_snapshot(report["metrics"]))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render a metrics snapshot as a terminal table"
    )
    report.add_argument(
        "path",
        nargs="?",
        default="BENCH_obs.json",
        help="snapshot or BENCH_obs.json file (default: BENCH_obs.json)",
    )
    report.add_argument(
        "--json", action="store_true", help="emit the snapshot JSON instead"
    )
    report.add_argument(
        "--prefix",
        default=None,
        help="only metrics under this dotted namespace (e.g. 'service')",
    )
    report.set_defaults(func=_cmd_report)

    bench = sub.add_parser(
        "bench",
        help="measure tracer overhead, write BENCH_obs.json + TRACE_obs.json",
    )
    bench.add_argument(
        "--smoke", action="store_true", help="fast CI variant (fewer repeats)"
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="timing repeats per mode (default: 7 full, 3 smoke)",
    )
    bench.add_argument(
        "--output", default="BENCH_obs.json", help="report destination"
    )
    bench.add_argument(
        "--trace",
        default="TRACE_obs.json",
        help="merged Perfetto trace destination ('' to skip)",
    )
    bench.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
