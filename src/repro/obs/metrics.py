"""Zero-dependency metrics registry: counters, gauges, histograms.

The unified accounting layer for the repo's timing claims.  Every
component that used to keep a bespoke stats dict (transport stats,
cache hit/miss counters, pool refetch savings) now increments metrics
in a :class:`MetricsRegistry` and exposes its old public attribute as
a *view* over the registry — one accounting truth, queryable and
mergeable across worker processes.

Design constraints (mirrors the tracer in :mod:`repro.obs.trace`):

* stdlib only — importable from every layer without cycles;
* thread-safe — metrics carry their own locks (plain ``int``/``float``
  arithmetic under a `threading.Lock`; registry get-or-create under a
  registry lock);
* picklable — locks are dropped on ``__getstate__`` and recreated on
  ``__setstate__`` so registries can ride along with planners shipped
  to fork-server workers;
* JSON-stable — :meth:`MetricsRegistry.to_json` sorts keys, snapshots
  contain only plain scalars/lists, and two registries with the same
  observations serialize identically.

Histograms use fixed exponential buckets
(:data:`DEFAULT_LATENCY_BUCKETS`: 1µs .. ~67s, powers of two) and
report p50/p95/p99 via linear interpolation inside the containing
bucket, clamped to the observed ``[min, max]`` — accurate to roughly
one bucket width (verified against ``numpy.percentile`` in
``tests/test_obs.py``).

Cross-process merging is snapshot-based: a worker sends
``registry.snapshot()`` through any existing transport (pickle pipe,
shm ring, KV store) and the parent folds it in with
:func:`merge_snapshots` or :meth:`MetricsRegistry.merge_snapshot`.
"""

from __future__ import annotations

import json
import math
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_snapshots",
]

#: Exponential latency buckets: upper bounds in seconds, 1µs · 2**i.
#: The implicit final bucket catches everything above ~67s.
DEFAULT_LATENCY_BUCKETS = tuple(1e-6 * 2.0**i for i in range(27))

Number = Union[int, float]


class Counter:
    """Monotonic counter (int or float increments)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0
        self._lock = threading.Lock()

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}

    def __getstate__(self):
        return {"name": self.name, "value": self._value}

    def __setstate__(self, state):
        self.name = state["name"]
        self._value = state["value"]
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Last-value metric (e.g. queue depth, ring slots in use)."""

    __slots__ = ("name", "_value", "_updates", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value: Number = 0
        self._updates = 0
        self._lock = threading.Lock()

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value
            self._updates += 1

    def inc(self, amount: Number = 1) -> None:
        with self._lock:
            self._value += amount
            self._updates += 1

    @property
    def value(self) -> Number:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0
            self._updates = 0

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value, "updates": self._updates}

    def __getstate__(self):
        return {"name": self.name, "value": self._value, "updates": self._updates}

    def __setstate__(self, state):
        self.name = state["name"]
        self._value = state["value"]
        self._updates = state["updates"]
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self._value})"


def _bucket_quantile(
    bounds: Sequence[float],
    counts: Sequence[int],
    count: int,
    lo: float,
    hi: float,
    q: float,
) -> float:
    """Quantile ``q`` from fixed-bucket counts, numpy-'linear' ranked.

    Bucket ``i`` covers ``(bounds[i-1], bounds[i]]`` (bucket 0 extends
    down to the observed minimum, the final overflow bucket up to the
    observed maximum).  The estimate places the bucket's samples
    uniformly across its span and is clamped to ``[lo, hi]``.
    """
    if count <= 0:
        return math.nan
    rank = q * (count - 1)
    cum = 0
    for i, c in enumerate(counts):
        if c == 0:
            continue
        if cum + c > rank:
            b_lo = bounds[i - 1] if i > 0 else lo
            b_hi = bounds[i] if i < len(bounds) else hi
            b_lo = max(min(b_lo, hi), min(lo, hi))
            b_hi = min(max(b_hi, lo), max(lo, hi))
            frac = (rank - cum + 0.5) / c
            est = b_lo + (b_hi - b_lo) * frac
            return min(max(est, lo), hi)
        cum += c
    return hi


class Histogram:
    """Fixed-bucket histogram with p50/p95/p99 quantile estimates."""

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min", "_max", "_lock")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram bounds must be strictly increasing")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: Number) -> None:
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimate quantile ``q`` in [0, 1]; NaN when empty."""
        with self._lock:
            return _bucket_quantile(
                self.bounds, self._counts, self._count, self._min, self._max, q
            )

    def percentiles(self) -> Dict[str, float]:
        with self._lock:
            counts = list(self._counts)
            count, lo, hi = self._count, self._min, self._max
        return {
            key: _bucket_quantile(self.bounds, counts, count, lo, hi, q)
            for key, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
        }

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = math.inf
            self._max = -math.inf

    def _merge_counts(
        self, counts: Sequence[int], count: int, total: float, lo: float, hi: float
    ) -> None:
        with self._lock:
            for i, c in enumerate(counts):
                self._counts[i] += c
            self._count += count
            self._sum += total
            if lo < self._min:
                self._min = lo
            if hi > self._max:
                self._max = hi

    def snapshot(self) -> dict:
        with self._lock:
            counts = list(self._counts)
            count, total = self._count, self._sum
            lo, hi = self._min, self._max
        quantiles = {
            key: _bucket_quantile(self.bounds, counts, count, lo, hi, q)
            for key, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
        }
        return {
            "type": "histogram",
            "count": count,
            "sum": total,
            "min": lo if count else None,
            "max": hi if count else None,
            "bounds": list(self.bounds),
            "counts": counts,
            "p50": None if count == 0 else quantiles["p50"],
            "p95": None if count == 0 else quantiles["p95"],
            "p99": None if count == 0 else quantiles["p99"],
        }

    def __getstate__(self):
        return {
            "name": self.name,
            "bounds": self.bounds,
            "counts": list(self._counts),
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    def __setstate__(self, state):
        self.name = state["name"]
        self.bounds = tuple(state["bounds"])
        self._counts = list(state["counts"])
        self._count = state["count"]
        self._sum = state["sum"]
        self._min = state["min"]
        self._max = state["max"]
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram({self.name}, count={self._count})"


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Named metrics with get-or-create access, snapshot/diff/merge."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}
        self._lock = threading.Lock()

    # -- get-or-create ----------------------------------------------------
    def _get_or_create(self, name: str, kind, *args) -> Metric:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, *args)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, bounds)

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # -- snapshot / diff / merge ------------------------------------------
    def snapshot(self) -> Dict[str, dict]:
        """Plain-dict snapshot of every metric (JSON-ready)."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def diff(self, before: Mapping[str, dict]) -> Dict[str, dict]:
        """Delta between the live registry and an earlier snapshot.

        Counters and histogram counts subtract; gauges report their
        current value (a level, not a rate).  Histogram min/max and
        quantiles are recomputed from the *differenced* bucket counts,
        so the result describes only the observations made since
        ``before`` (window extrema are approximated by bucket edges).
        """
        now = self.snapshot()
        out: Dict[str, dict] = {}
        for name, snap in now.items():
            prev = before.get(name)
            if prev is None or prev.get("type") != snap["type"]:
                out[name] = snap
                continue
            if snap["type"] == "counter":
                out[name] = {"type": "counter", "value": snap["value"] - prev["value"]}
            elif snap["type"] == "gauge":
                out[name] = dict(snap)
            else:
                counts = [a - b for a, b in zip(snap["counts"], prev["counts"])]
                count = snap["count"] - prev["count"]
                total = snap["sum"] - prev["sum"]
                bounds = snap["bounds"]
                lo, hi = _window_extrema(bounds, counts, snap)
                out[name] = _histogram_snapshot(bounds, counts, count, total, lo, hi)
        return out

    def merge_snapshot(self, snap: Mapping[str, dict]) -> None:
        """Fold a snapshot (e.g. from a worker process) into this registry."""
        for name, entry in snap.items():
            kind = entry.get("type")
            if kind == "counter":
                self.counter(name).inc(entry["value"])
            elif kind == "gauge":
                gauge = self.gauge(name)
                if entry.get("updates", 0) > 0:
                    gauge.set(entry["value"])
            elif kind == "histogram":
                hist = self.histogram(name, entry["bounds"])
                if tuple(hist.bounds) != tuple(entry["bounds"]):
                    raise ValueError(
                        f"histogram {name!r}: incompatible bucket bounds"
                    )
                if entry["count"]:
                    hist._merge_counts(
                        entry["counts"],
                        entry["count"],
                        entry["sum"],
                        entry["min"],
                        entry["max"],
                    )
            else:
                raise ValueError(f"unknown metric type {kind!r} for {name!r}")

    def reset(self) -> None:
        with self._lock:
            metrics = list(self._metrics.values())
        for metric in metrics:
            metric.reset()

    # -- serialization ----------------------------------------------------
    def to_json(self, indent: Optional[int] = None) -> str:
        """Stable JSON: sorted keys, snapshot scalars only."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> Dict[str, dict]:
        return json.loads(text)

    # -- pickling (locks dropped, recreated) ------------------------------
    def __getstate__(self):
        return {"metrics": self._metrics}

    def __setstate__(self, state):
        self._metrics = state["metrics"]
        self._lock = threading.Lock()


def _window_extrema(bounds, counts, snap):
    """Approximate extrema of a differenced histogram window."""
    occupied = [i for i, c in enumerate(counts) if c > 0]
    if not occupied:
        return math.inf, -math.inf
    first, last = occupied[0], occupied[-1]
    lo = bounds[first - 1] if first > 0 else (snap["min"] or 0.0)
    hi = bounds[last] if last < len(bounds) else (snap["max"] or bounds[-1])
    return lo, hi


def _histogram_snapshot(bounds, counts, count, total, lo, hi):
    quantiles = {
        key: _bucket_quantile(bounds, counts, count, lo, hi, q)
        for key, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))
    }
    return {
        "type": "histogram",
        "count": count,
        "sum": total,
        "min": lo if count else None,
        "max": hi if count else None,
        "bounds": list(bounds),
        "counts": list(counts),
        "p50": None if count == 0 else quantiles["p50"],
        "p95": None if count == 0 else quantiles["p95"],
        "p99": None if count == 0 else quantiles["p99"],
    }


def merge_snapshots(snapshots: Iterable[Mapping[str, dict]]) -> Dict[str, dict]:
    """Merge snapshots from several registries/processes into one.

    Counters and histogram buckets add; a gauge takes the value of the
    last snapshot that ever set it.  Histograms must share bucket
    bounds (all instrumentation uses :data:`DEFAULT_LATENCY_BUCKETS`
    unless a caller overrides them consistently).
    """
    merged = MetricsRegistry()
    for snap in snapshots:
        merged.merge_snapshot(snap)
    return merged.snapshot()


class _NullMetric:
    """No-op stand-in accepted everywhere a real metric is."""

    __slots__ = ()

    def inc(self, amount: Number = 1) -> None:
        pass

    def set(self, value: Number) -> None:
        pass

    def observe(self, value: Number) -> None:
        pass

    def reset(self) -> None:
        pass

    @property
    def value(self) -> Number:
        return 0

    @property
    def count(self) -> int:
        return 0

    def quantile(self, q: float) -> float:
        return math.nan

    def percentiles(self) -> Dict[str, float]:
        return {"p50": math.nan, "p95": math.nan, "p99": math.nan}

    def snapshot(self) -> dict:
        return {"type": "counter", "value": 0}


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """Registry that records nothing — the uninstrumented baseline.

    Passed as ``metrics=`` to components when measuring tracer/metrics
    overhead (``repro.obs.bench``): call sites still execute, but every
    observation is a no-op, which is as close to "uninstrumented" as
    the instrumented code can get.
    """

    __slots__ = ()

    def counter(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str) -> _NullMetric:
        return _NULL_METRIC

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> _NullMetric:
        return _NULL_METRIC

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def snapshot(self) -> Dict[str, dict]:
        return {}

    def diff(self, before: Mapping[str, dict]) -> Dict[str, dict]:
        return {}

    def merge_snapshot(self, snap: Mapping[str, dict]) -> None:
        pass

    def reset(self) -> None:
        pass

    def to_json(self, indent: Optional[int] = None) -> str:
        return "{}"


NULL_REGISTRY = NullRegistry()
