"""Unified observability: span tracer, metrics registry, obs CLI.

The telemetry subsystem behind every timing claim in the repo:

* :mod:`repro.obs.trace` — zero-dependency span tracer with a
  lock-free disabled fast path and Chrome-trace export; planner
  stages, pipeline iterations, transport encode/write/decode, shm-ring
  reads, and KV ops all land on one Perfetto timeline (merge with the
  simulator's execution lanes via
  :func:`repro.sim.trace.merge_chrome_traces`).
* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  latency histograms (p50/p95/p99) in a snapshot/diff/mergeable
  :class:`~repro.obs.metrics.MetricsRegistry`; the transport stats,
  cache hit/miss counters, and pool savings counters are views over
  it.
* ``python -m repro.obs report`` — renders a registry snapshot as a
  terminal table; ``python -m repro.obs bench`` measures tracer
  overhead and writes ``BENCH_obs.json`` (CI-gated by
  ``benchmarks/check_bench_floors.py``).

This package is intentionally dependency-free (stdlib only in
``trace``/``metrics``) so every layer of the repo can import it
without cycles; ``report``/``bench`` import the rest of ``repro``
lazily.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    merge_snapshots,
)
from .trace import (
    Tracer,
    add_span,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    traced,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "merge_snapshots",
    "Tracer",
    "get_tracer",
    "span",
    "add_span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
]
