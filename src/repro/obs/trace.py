"""Zero-dependency span tracer with Chrome-trace export.

One global tracer (:func:`get_tracer`) collects ``(name, cat, pid,
tid, span_id, parent_id, start, end, args)`` spans from every
instrumented surface — planner stages, pipeline iterations, transport
encode/write/decode, shm-ring reads, KV ops — and exports them in the
Chrome trace-event format, so they load into Perfetto /
``chrome://tracing`` on the same timeline as the execution lanes
produced by :mod:`repro.sim.trace` (merge the files with
:func:`repro.sim.trace.merge_chrome_traces`).

Tracing is **off by default** and the disabled path is deliberately
free of locks and allocation: ``span(...)`` reads one bool and returns
a shared no-op singleton, so instrumentation can stay inline on hot
paths (the obs benchmark gates the disabled-mode overhead ratio at
≤ 1.01 of the uninstrumented time; see ``BENCH_obs.json``).

Identity is thread- and process-aware: span ids embed ``os.getpid()``
(fork-server planner workers allocate from disjoint ranges), the
thread id is recorded per span, and parent links come from a
per-thread stack so nesting is correct under concurrent planning.

Timestamps are ``time.perf_counter()`` — on Linux a process-shared
monotonic clock (the transport layer already relies on this for its
cross-process latency stamps), so spans synthesized from worker-side
durations via :meth:`Tracer.add_span` land at the right wall offset.

Usage::

    from repro.obs import trace as obs_trace

    obs_trace.enable_tracing()
    with obs_trace.span("placement", "planner", batch=3):
        ...
    obs_trace.get_tracer().write_chrome_trace("TRACE.json")

Set ``REPRO_TRACE=1`` to enable tracing at import time.
"""

from __future__ import annotations

import functools
import itertools
import json
import os
import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "Tracer",
    "get_tracer",
    "span",
    "add_span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
]

#: Span-id layout: ``pid << _PID_SHIFT | per-process sequence number``.
_PID_SHIFT = 24

SpanTuple = Tuple[str, str, int, int, int, int, float, float, Optional[dict]]


class _NullSpan:
    """Shared no-op span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        pass


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span context manager (only built while tracing is enabled)."""

    __slots__ = ("_tracer", "name", "cat", "args", "span_id", "parent_id", "start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def set(self, **args) -> None:
        """Attach key/value annotations to the span."""
        self.args.update(args)

    def __enter__(self) -> "_Span":
        tracer = self._tracer
        stack = tracer._stack()
        self.parent_id = stack[-1] if stack else 0
        self.span_id = tracer._next_id()
        stack.append(self.span_id)
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] == self.span_id:
            stack.pop()
        tracer._spans.append(
            (
                self.name,
                self.cat,
                os.getpid(),
                threading.get_ident(),
                self.span_id,
                self.parent_id,
                self.start,
                end,
                self.args or None,
            )
        )
        return False


class Tracer:
    """Span collector with a lock-free disabled fast path.

    ``enabled`` is a plain attribute read — toggling it is the only
    synchronization the fast path needs (stale reads just mean a span
    boundary lands one toggle late).  Recorded spans go into a Python
    list (append is atomic under the GIL), so concurrent planner
    threads trace without contention.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.origin = time.perf_counter()
        self._spans: List[SpanTuple] = []
        self._ids = itertools.count(1)
        self._tls = threading.local()

    # -- internals ---------------------------------------------------------
    def _stack(self) -> List[int]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _next_id(self) -> int:
        return (os.getpid() << _PID_SHIFT) | next(self._ids)

    # -- recording ---------------------------------------------------------
    def span(self, name: str, cat: str = "", **args):
        """Context manager timing a code region (no-op when disabled)."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, cat, args)

    def add_span(
        self,
        name: str,
        cat: str,
        start: float,
        end: float,
        *,
        args: Optional[dict] = None,
        pid: Optional[int] = None,
        tid: Optional[int] = None,
    ) -> None:
        """Record an externally measured interval.

        ``start``/``end`` are absolute ``time.perf_counter()`` stamps —
        used for intervals measured elsewhere (worker-side encode/write
        durations relayed by the transport, pipeline execution windows
        reconstructed from iteration records).
        """
        if not self.enabled:
            return
        self._spans.append(
            (
                name,
                cat,
                os.getpid() if pid is None else pid,
                threading.get_ident() if tid is None else tid,
                self._next_id(),
                0,
                start,
                end,
                args,
            )
        )

    # -- control -----------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self, reset_origin: bool = False) -> None:
        """Drop recorded spans (optionally restart the clock origin)."""
        self._spans = []
        if reset_origin:
            self.origin = time.perf_counter()

    def spans(self) -> List[SpanTuple]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    # -- export ------------------------------------------------------------
    def to_chrome_trace(self, time_scale: float = 1e6) -> dict:
        """Chrome trace-event dict (Perfetto-loadable).

        Timestamps are rebased to :attr:`origin` and scaled by
        ``time_scale`` (default: seconds → microseconds, the format's
        native unit).  The returned dict carries ``clockOrigin`` — the
        ``perf_counter`` value of trace-local t=0 — which
        :func:`repro.sim.trace.merge_chrome_traces` uses to align this
        trace with others from the same clock.
        """
        events: List[dict] = []
        thread_index: Dict[Tuple[int, int], int] = {}
        for pid in sorted({s[2] for s in self._spans}):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"obs pid {pid}"},
                }
            )
        for name, cat, pid, tid, span_id, parent_id, start, end, args in self._spans:
            key = (pid, tid)
            index = thread_index.get(key)
            if index is None:
                index = sum(1 for (p, _t) in thread_index if p == pid)
                thread_index[key] = index
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": index,
                        "args": {"name": f"thread {index}"},
                    }
                )
            event_args = {"span_id": span_id}
            if parent_id:
                event_args["parent_id"] = parent_id
            if args:
                event_args.update(args)
            events.append(
                {
                    "name": name,
                    "cat": cat or "obs",
                    "ph": "X",
                    "pid": pid,
                    "tid": index,
                    "ts": (start - self.origin) * time_scale,
                    "dur": max(end - start, 0.0) * time_scale,
                    "args": event_args,
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "clockOrigin": self.origin,
        }

    def write_chrome_trace(self, path, time_scale: float = 1e6) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(time_scale), handle)


_TRACER = Tracer(enabled=os.environ.get("REPRO_TRACE", "") not in ("", "0"))


def get_tracer() -> Tracer:
    """The process-global tracer every instrumented surface records to."""
    return _TRACER


def span(name: str, cat: str = "", **args):
    """Module-level span against the global tracer (hot-path helper)."""
    tracer = _TRACER
    if not tracer.enabled:
        return _NULL_SPAN
    return _Span(tracer, name, cat, args)


def add_span(
    name: str,
    cat: str,
    start: float,
    end: float,
    *,
    args: Optional[dict] = None,
    pid: Optional[int] = None,
    tid: Optional[int] = None,
) -> None:
    """Record an externally measured interval on the global tracer."""
    tracer = _TRACER
    if not tracer.enabled:
        return
    tracer.add_span(name, cat, start, end, args=args, pid=pid, tid=tid)


def traced(name: Optional[str] = None, cat: str = ""):
    """Decorator form: trace every call of the wrapped function."""

    def decorate(fn):
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _TRACER
            if not tracer.enabled:
                return fn(*args, **kwargs)
            with _Span(tracer, label, cat, {}):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


def enable_tracing() -> None:
    _TRACER.enable()


def disable_tracing() -> None:
    _TRACER.disable()


def tracing_enabled() -> bool:
    return _TRACER.enabled
