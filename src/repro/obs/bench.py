"""Tracer/metrics overhead benchmark and combined-trace builder.

Two jobs, both behind ``python -m repro.obs bench`` (and the
``--obs`` mode of ``benchmarks/bench_overlap_pipeline.py``):

**Overhead.**  The observability layer claims its disabled path is
free: ``span(...)`` reads one bool, metric handles are no-ops when a
:class:`~repro.obs.metrics.NullRegistry` is injected.  This module
*measures* that claim on the Fig. 18 smoke workload (the same batches
the overlap smoke plans) under three modes:

* ``uninstrumented`` — ``NullRegistry`` + tracer disabled: call sites
  still execute but every observation is a no-op, the closest the
  instrumented code can get to not being instrumented at all;
* ``disabled`` — a real registry, tracer disabled: the shipping
  default;
* ``enabled`` — the same plus span recording.

Each mode plans the identical batch list; the reported time is the
minimum over interleaved repeats (robust to scheduler noise), and the
headline ratios — ``disabled / uninstrumented`` and ``enabled /
uninstrumented`` — are written to ``BENCH_obs.json`` and gated by
``benchmarks/check_bench_floors.py`` (tracked ceilings 1.01 / 1.05).
A direct per-span micro-benchmark (ns per ``span()`` enter/exit,
disabled and enabled) is recorded alongside.

**Telemetry + trace.**  With tracing enabled, one pipeline run (cache
hits and planner dispatches), one process-backend plan batch (shm
transport), KV round-trips, and one simulated execution are driven
through a *shared* registry; the resulting snapshot (including the
plan-fetch hit/dispatch latency split) lands in the report, and the
tracer spans, the pipeline's overlap timeline, and the simulator's
execution lanes are merged onto one epoch
(:func:`repro.sim.merge_chrome_traces`) into a Perfetto-loadable
``TRACE_obs.json`` — planner stages, pipeline iterations, transport
spans, and simulated execution on a shared clock.
"""

from __future__ import annotations

import json
import math
import platform
import subprocess
import time
from typing import Dict, List, Optional

from .metrics import NULL_REGISTRY, MetricsRegistry
from .trace import get_tracer, span as _span

__all__ = [
    "measure_overhead",
    "collect_telemetry",
    "run_obs_bench",
    "gate_failures",
    "plan_fetch_summary",
    "REQUIRED_METRICS",
    "DEFAULT_DISABLED_RATIO_MAX",
    "DEFAULT_ENABLED_RATIO_MAX",
    "DEFAULT_SMOKE_DISABLED_RATIO_MAX",
    "DEFAULT_SMOKE_ENABLED_RATIO_MAX",
]

#: Ceilings on the tracked (full-run) overhead ratios — the acceptance
#: numbers: disabled-mode instrumentation must be ≈ free, enabled-mode
#: tracing within 5% on the smoke workload.
DEFAULT_DISABLED_RATIO_MAX = 1.01
DEFAULT_ENABLED_RATIO_MAX = 1.05

#: Ceilings for the CI smoke run: same measurement, shared-runner
#: noise, fewer repeats — looser so scheduling jitter cannot fail a PR
#: that did not touch the fast path, while a real regression (a lock
#: or allocation on the disabled path) still lands far above.
DEFAULT_SMOKE_DISABLED_RATIO_MAX = 1.05
DEFAULT_SMOKE_ENABLED_RATIO_MAX = 1.25

#: Metric names the telemetry workload must populate — the presence
#: gate ``check_bench_floors.py`` enforces so a refactor cannot
#: silently drop an instrumented surface.
REQUIRED_METRICS = (
    "planner.plan_s",
    "planner.placement_s",
    "pipeline.plan_fetch_hit_s",
    "pipeline.plan_fetch_dispatch_s",
    "pipeline.iterations",
    "cache.hits",
    "cache.misses",
    "kv.put_s",
    "kv.get_s",
    "transport.plans",
)


def _git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def _smoke_batches(num_batches: int = 4):
    """Distinct small batches (~2048 tokens, varied lengths) — the same
    shape the overlap smoke cell plans."""
    from repro.blocks import BatchSpec
    from repro.masks import make_mask

    mask = make_mask("causal")
    return [
        BatchSpec.build(
            [512 + 128 * i, 384, 256 + 64 * i, 896 - 192 * i], mask
        )
        for i in range(num_batches)
    ]


def _smoke_scale(num_batches: int = 4):
    from repro.bench import BenchScale

    return BenchScale.sweep(
        num_batches=num_batches,
        token_budget=2048,
        max_seqlen=2048,
        block_size=256,
    )


def _sweep_scale(num_batches: int = 4, token_budget: int = 32768,
                 block_size: int = 512):
    from repro.bench import BenchScale

    return BenchScale.sweep(
        num_batches=num_batches,
        token_budget=int(token_budget),
        max_seqlen=int(token_budget),
        block_size=int(block_size),
    )


def _span_overhead_ns(iters: int = 50000) -> Dict[str, float]:
    """Direct per-call cost of ``span()`` enter/exit, ns per op."""
    tracer = get_tracer()
    was_enabled = tracer.enabled
    out: Dict[str, float] = {}
    try:
        tracer.disable()
        start = time.perf_counter()
        for _ in range(iters):
            with _span("obs.bench", "obs"):
                pass
        out["disabled"] = (time.perf_counter() - start) / iters * 1e9
        tracer.enable()
        tracer.clear()
        start = time.perf_counter()
        for _ in range(iters):
            with _span("obs.bench", "obs"):
                pass
        out["enabled"] = (time.perf_counter() - start) / iters * 1e9
        tracer.clear()
    finally:
        tracer.enabled = was_enabled
    return {key: round(value, 1) for key, value in out.items()}


def measure_overhead(repeats: int = 5, num_batches: int = 4) -> Dict:
    """Plan the smoke workload under the three instrumentation modes.

    Returns min-of-``repeats`` seconds per mode plus the headline
    ratios.  The first (unrecorded) round warms caches and imports so
    no mode pays one-time costs.
    """
    from repro.core import DCPPlanner

    scale = _smoke_scale(num_batches)
    batches = _smoke_batches(num_batches)
    planners = {
        "uninstrumented": DCPPlanner(
            scale.cluster, scale.attention, scale.dcp_config(),
            metrics=NULL_REGISTRY,
        ),
        "disabled": DCPPlanner(
            scale.cluster, scale.attention, scale.dcp_config()
        ),
        "enabled": DCPPlanner(
            scale.cluster, scale.attention, scale.dcp_config()
        ),
    }
    tracer = get_tracer()
    was_enabled = tracer.enabled
    times = {mode: math.inf for mode in planners}
    try:
        for round_index in range(repeats + 1):
            for mode, planner in planners.items():
                if mode == "enabled":
                    tracer.enable()
                    tracer.clear()
                else:
                    tracer.disable()
                start = time.perf_counter()
                for batch in batches:
                    planner.plan_batch(batch)
                elapsed = time.perf_counter() - start
                if round_index > 0:  # round 0 is warm-up
                    times[mode] = min(times[mode], elapsed)
        tracer.clear()
    finally:
        tracer.enabled = was_enabled
    base = times["uninstrumented"]
    return {
        "workload": {
            "token_budget": 2048,
            "block_size": 256,
            "num_batches": num_batches,
            "repeats": repeats,
        },
        "uninstrumented_s": round(base, 6),
        "disabled_s": round(times["disabled"], 6),
        "enabled_s": round(times["enabled"], 6),
        "disabled_ratio": round(times["disabled"] / base, 4),
        "enabled_ratio": round(times["enabled"] / base, 4),
        "span_ns": _span_overhead_ns(),
    }


def _histogram_brief(snapshot: Dict[str, dict], name: str) -> Dict:
    """``{count, p50_s, p99_s}`` view of one histogram snapshot."""
    snap = snapshot.get(name) or {}
    return {
        "count": int(snap.get("count", 0)),
        "p50_s": snap.get("p50"),
        "p99_s": snap.get("p99"),
    }


def plan_fetch_summary(snapshot: Dict[str, dict]) -> Dict:
    """Plan-fetch latency split by serving path, from a snapshot."""
    return {
        "hit": _histogram_brief(snapshot, "pipeline.plan_fetch_hit_s"),
        "dispatch": _histogram_brief(
            snapshot, "pipeline.plan_fetch_dispatch_s"
        ),
    }


def collect_telemetry(smoke: bool = True, num_batches: int = 4,
                      cycles: int = 2) -> Dict:
    """One traced workload across every instrumented surface.

    Runs, with tracing enabled and a single shared registry: a
    thread-backend pipeline (cycle 2 serves from the plan cache, so
    both plan-fetch paths populate), one process-backend plan batch
    over the shm transport, KV round-trips of the resulting plans, and
    one simulated execution.  Returns the registry snapshot, span
    count, and the merged Chrome trace (tracer spans + overlap
    timeline + execution lanes on one epoch).

    ``smoke=False`` uses the Fig. 18 sweep point (32768 tokens,
    512-token blocks) instead of the smoke configuration.
    """
    from repro.core import DCPPlanner, KVStore, PlanCache
    from repro.pipeline import (
        OverlapPipeline,
        PipelineRunner,
        ProcessPlannerBackend,
        cost_model_executor,
    )
    from repro.sim import (
        merge_chrome_traces,
        overlap_chrome_trace,
        simulate_plan,
        to_chrome_trace,
    )

    if smoke:
        scale = _smoke_scale(num_batches)
        batches = _smoke_batches(num_batches)
        time_scale = 3.0
    else:
        from repro.bench import PAPER_MASKS, make_batches

        scale = _sweep_scale(num_batches)
        batches = make_batches(
            "longdatacollections", scale, PAPER_MASKS["causal"]()
        )[:num_batches]
        time_scale = 1.0

    registry = MetricsRegistry()
    tracer = get_tracer()
    was_enabled = tracer.enabled
    tracer.enable()
    tracer.clear(reset_origin=True)
    try:
        planner = DCPPlanner(
            scale.cluster, scale.attention, scale.dcp_config(),
            metrics=registry,
        )
        cache = PlanCache(planner, capacity=64, metrics=registry)
        pipeline = OverlapPipeline(
            list(batches) * max(cycles, 1), planner, lookahead=2,
            max_workers=2, backend="thread", cache=cache, metrics=registry,
        )
        runner = PipelineRunner(
            pipeline, execute=cost_model_executor(time_scale=time_scale)
        )
        stats = runner.run().stats
        overlap_trace = overlap_chrome_trace(
            stats.timeline(), clock_origin=pipeline.clock_origin
        )

        backend = ProcessPlannerBackend(
            planner, max_workers=2, transport="shm", metrics=registry
        )
        try:
            tickets = [
                backend.submit(index, batch)
                for index, batch in enumerate(batches)
            ]
            plans = [ticket.result()[0] for ticket in tickets]
        finally:
            backend.close()

        store = KVStore(metrics=registry)
        for index, plan in enumerate(plans):
            store.put(f"plan/{index}", plan)
        for index in range(len(plans)):
            store.get(f"plan/{index}")

        timing = simulate_plan(plans[0])
        sim_trace = to_chrome_trace(timing)

        spans_recorded = len(tracer)
        obs_trace = tracer.to_chrome_trace()
        tracer.clear()
    finally:
        tracer.enabled = was_enabled

    merged = merge_chrome_traces(
        [obs_trace, overlap_trace, sim_trace],
        labels=["obs", "pipeline", "sim"],
    )
    snapshot = registry.snapshot()
    return {
        "snapshot": snapshot,
        "plan_fetch": plan_fetch_summary(snapshot),
        "spans_recorded": spans_recorded,
        "iterations": stats.iterations,
        "steady_hidden_fraction": round(stats.steady_hidden_fraction, 4),
        "trace": merged,
    }


def run_obs_bench(
    smoke: bool = False,
    repeats: Optional[int] = None,
    trace_path: Optional[str] = None,
) -> Dict:
    """Overhead measurement + telemetry workload; one report dict.

    Writes the merged Chrome trace to ``trace_path`` when given (the
    caller owns file placement; the benchmarks wrapper points this at
    ``TRACE_obs.json`` / ``TRACE_obs.smoke.json``).
    """
    if repeats is None:
        repeats = 3 if smoke else 7
    overhead = measure_overhead(repeats=repeats)
    telemetry = collect_telemetry(smoke=smoke)
    report = {
        "benchmark": "obs_overhead_smoke" if smoke else "obs_overhead",
        "config": {
            "smoke": smoke,
            "overhead_point": "fig18-smoke (2048 tokens, 256 blocks)",
            "trace_point": (
                "fig18-smoke (2048 tokens, 256 blocks)"
                if smoke
                else "fig18-sweep (32768 tokens, 512 blocks)"
            ),
        },
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "overhead": overhead,
        "disabled_ratio": overhead["disabled_ratio"],
        "enabled_ratio": overhead["enabled_ratio"],
        "disabled_ratio_max": DEFAULT_DISABLED_RATIO_MAX,
        "enabled_ratio_max": DEFAULT_ENABLED_RATIO_MAX,
        "smoke": {
            "disabled_ratio_max": DEFAULT_SMOKE_DISABLED_RATIO_MAX,
            "enabled_ratio_max": DEFAULT_SMOKE_ENABLED_RATIO_MAX,
        },
        "required_metrics": list(REQUIRED_METRICS),
        "metrics_present": [
            name
            for name in REQUIRED_METRICS
            if name in telemetry["snapshot"]
        ],
        "plan_fetch": telemetry["plan_fetch"],
        "spans_recorded": telemetry["spans_recorded"],
        "pipeline_iterations": telemetry["iterations"],
        "steady_hidden_fraction": telemetry["steady_hidden_fraction"],
        "metrics": telemetry["snapshot"],
    }
    if trace_path:
        with open(trace_path, "w", encoding="utf-8") as handle:
            json.dump(telemetry["trace"], handle)
        report["trace_path"] = trace_path
        report["trace_events"] = len(telemetry["trace"]["traceEvents"])
    print(
        f"obs overhead: uninstrumented={overhead['uninstrumented_s']:.4f}s "
        f"disabled ratio={overhead['disabled_ratio']:.4f} "
        f"enabled ratio={overhead['enabled_ratio']:.4f} "
        f"span={overhead['span_ns'].get('enabled')}ns "
        f"spans={report['spans_recorded']}"
    )
    return report


def gate_failures(
    report: Dict,
    disabled_ceiling: float,
    enabled_ceiling: float,
) -> List[str]:
    """Self-gate checks shared by the ``--obs --smoke`` bench run."""
    failures: List[str] = []
    if report["disabled_ratio"] > disabled_ceiling:
        failures.append(
            f"disabled-tracer overhead ratio {report['disabled_ratio']:.4f} "
            f"above the ceiling {disabled_ceiling:.2f}"
        )
    if report["enabled_ratio"] > enabled_ceiling:
        failures.append(
            f"enabled-tracer overhead ratio {report['enabled_ratio']:.4f} "
            f"above the ceiling {enabled_ceiling:.2f}"
        )
    missing = [
        name
        for name in report["required_metrics"]
        if name not in report["metrics_present"]
    ]
    if missing:
        failures.append(f"required metrics missing: {', '.join(missing)}")
    for path, brief in report["plan_fetch"].items():
        if brief["count"] < 1:
            failures.append(f"plan-fetch {path} path observed no fetches")
    if report["spans_recorded"] < 1:
        failures.append("telemetry workload recorded no spans")
    return failures
