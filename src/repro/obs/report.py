"""Terminal rendering of metrics-registry snapshots.

``python -m repro.obs report`` loads a snapshot — either a raw
:meth:`~repro.obs.metrics.MetricsRegistry.snapshot` JSON file or a
``BENCH_obs.json`` report (whose telemetry lives under ``"metrics"``)
— and renders it as an aligned table: counters and gauges with their
values, histograms with count/p50/p95/p99 in human time units.  The
plan-fetch latency split (``pipeline.plan_fetch_hit_s`` vs
``pipeline.plan_fetch_dispatch_s``) the planner-as-a-service work
needs reads straight off this table.

The module is import-light (stdlib only) so the CLI stays fast.
"""

from __future__ import annotations

import json
from typing import List, Mapping, Optional

__all__ = ["format_value", "format_seconds", "render_snapshot", "load_snapshot"]

#: Metric-name suffixes that mark a value as seconds (the repo-wide
#: convention: ``*_s`` histograms/counters hold seconds).
_SECONDS_SUFFIX = "_s"


def format_seconds(value: Optional[float]) -> str:
    """Human SI rendering of a latency in seconds (``-`` when absent)."""
    if value is None:
        return "-"
    value = float(value)
    if value != value:  # NaN: empty histogram
        return "-"
    if value >= 1.0:
        return f"{value:.3f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.3f}ms"
    return f"{value * 1e6:.1f}us"


def format_value(name: str, value) -> str:
    """Counter/gauge value, seconds-aware via the ``*_s`` convention."""
    if value is None:
        return "-"
    if name.endswith(_SECONDS_SUFFIX):
        return format_seconds(value)
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.4f}"
    return str(int(value))


def _histogram_row(name: str, snap: Mapping) -> List[str]:
    seconds = name.endswith(_SECONDS_SUFFIX)

    def fmt(key: str) -> str:
        value = snap.get(key)
        if value is None:
            return "-"
        return format_seconds(value) if seconds else f"{float(value):.4g}"

    return [
        name,
        "histogram",
        str(snap.get("count", 0)),
        fmt("p50"),
        fmt("p95"),
        fmt("p99"),
    ]


def render_snapshot(snapshot: Mapping[str, Mapping],
                    prefix: Optional[str] = None) -> str:
    """Aligned table of a registry snapshot (one metric per line).

    ``prefix`` keeps only metrics under that dotted namespace (e.g.
    ``"service"`` for the plan-serving table) — exact name match or
    ``prefix.``-qualified, so ``"kv"`` never drags in ``kvother.*``.
    """
    header = ["metric", "type", "count/value", "p50", "p95", "p99"]
    rows: List[List[str]] = []
    for name in sorted(snapshot):
        if prefix is not None and not (
            name == prefix or name.startswith(prefix + ".")
        ):
            continue
        snap = snapshot[name]
        kind = snap.get("type", "?")
        if kind == "histogram":
            rows.append(_histogram_row(name, snap))
        elif kind == "gauge":
            rows.append(
                [
                    name,
                    kind,
                    f"{format_value(name, snap.get('value'))} "
                    f"({snap.get('updates', 0)} updates)",
                    "-",
                    "-",
                    "-",
                ]
            )
        else:
            rows.append(
                [name, kind, format_value(name, snap.get("value")), "-", "-", "-"]
            )
    if not rows:
        return "(empty snapshot)"
    widths = [
        max(len(header[col]), max(len(row[col]) for row in rows))
        for col in range(len(header))
    ]

    def line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    out = [line(header), line(["-" * width for width in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def load_snapshot(path: str) -> Mapping[str, Mapping]:
    """Snapshot from a JSON file.

    Accepts a raw registry snapshot or any report dict that nests one
    under ``"metrics"`` (``BENCH_obs.json``).
    """
    with open(path) as handle:
        data = json.load(handle)
    if isinstance(data, dict) and isinstance(data.get("metrics"), dict):
        return data["metrics"]
    if not isinstance(data, dict):
        raise ValueError(f"{path}: not a metrics snapshot")
    return data
