"""Full attention autograd step on the simulated cluster.

Runs DCP's forward *and backward* passes as real distributed plans —
KV blocks are re-fetched, dQ/dKV partials return to their home devices
— and checks every gradient against the dense reference.  Prints the
forward/backward traffic ratio the paper's analytic model assumes.

Run:  python examples/distributed_backward.py
"""

import numpy as np

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    generate_blocks,
    make_mask,
)
from repro.model.attention import attention_forward_backward
from repro.placement import PlacementConfig, place_blocks
from repro.runtime import BatchInputs, run_forward_backward
from repro.scheduling import build_schedule
from repro.sim import simulate_plan
from repro.scheduling import serialize_backward_schedule, serialize_schedule


def main() -> None:
    mask = make_mask("lambda", sink=8, window=32)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=32)
    batch = BatchSpec.build([256, 160, 96], mask)
    block_set = generate_blocks(batch, attention, block_size=32)
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    placement = place_blocks(block_set, cluster, PlacementConfig(seed=0))
    schedule = build_schedule(block_set, placement, num_divisions=4)

    inputs = BatchInputs.random(block_set, seed=0)
    rng = np.random.default_rng(1)
    grad_outputs = [
        rng.standard_normal(q.shape).astype(np.float32) for q in inputs.q
    ]

    outputs, grads, forward, backward = run_forward_backward(
        schedule, inputs, grad_outputs
    )

    worst = 0.0
    for seq in range(len(batch.sequences)):
        _, dense_backward = attention_forward_backward(
            inputs.q[seq], inputs.k[seq], inputs.v[seq], mask
        )
        dq_ref, dk_ref, dv_ref = dense_backward(grad_outputs[seq])
        for got, ref in ((grads.dq[seq], dq_ref), (grads.dk[seq], dk_ref),
                         (grads.dv[seq], dv_ref)):
            np.testing.assert_allclose(got, ref, rtol=3e-3, atol=3e-4)
            worst = max(worst, float(np.abs(got - ref).max()))
    print(f"gradients verified against dense reference "
          f"(max abs err {worst:.2e})")

    fw_bytes = forward.fabric.total_bytes
    bw_bytes = backward.fabric.total_bytes
    print(f"forward traffic : {fw_bytes / 1e6:7.3f} MB")
    print(f"backward traffic: {bw_bytes / 1e6:7.3f} MB "
          f"({bw_bytes / max(fw_bytes, 1):.2f}x forward; the paper's "
          f"analytic model assumes ~2x)")

    fw_time = simulate_plan(serialize_schedule(schedule)).iteration_time
    bw_time = simulate_plan(
        serialize_backward_schedule(schedule)
    ).iteration_time
    print(f"simulated fw {fw_time * 1e3:.3f} ms, bw {bw_time * 1e3:.3f} ms "
          f"({bw_time / fw_time:.2f}x)")


if __name__ == "__main__":
    main()
