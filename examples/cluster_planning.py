"""Explore DCP planning decisions across cluster shapes and masks.

A systems-oriented tour of the planner: for a fixed batch, show how
placement, communication and the division schedule change with
(a) the cluster topology, (b) the attention mask, and (c) the
imbalance tolerance — the knobs studied in the paper's §7.3.

Run:  python examples/cluster_planning.py
"""

import numpy as np

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    generate_blocks,
    make_mask,
)
from repro.sim import simulate_plan


def describe(planner: DCPPlanner, block_set, label: str) -> None:
    plan = planner.plan(block_set)
    placement = planner.last_placement
    report = placement.comm_report()
    tokens = placement.tokens_per_device()
    flops = placement.flops_per_device()
    timing = simulate_plan(plan)
    print(f"\n== {label} ==")
    print(f"  tokens/device : {tokens.tolist()}")
    relative = (flops / max(flops.mean(), 1)).round(2)
    print(f"  flops balance : {relative.tolist()}  (1.0 = perfect)")
    print(f"  comm total    : {report.total_bytes / 1e6:8.2f} MB")
    print(f"  comm inter-node: {report.inter_machine_bytes / 1e6:7.2f} MB")
    print(f"  sim fw time   : {timing.iteration_time * 1e3:8.3f} ms")
    breakdown = timing.breakdown()
    print(f"  exposed comm  : {breakdown['non_ovlp_comm'] * 1e3:8.3f} ms "
          f"(overlapped {breakdown['overlap'] * 1e3:.3f} ms)")


def main() -> None:
    attention = AttentionSpec(num_q_heads=8, num_kv_groups=2, head_dim=128)
    seqlens = [24576, 8192, 4096, 4096, 2048, 2048, 1024]
    causal = BatchSpec.build(seqlens, make_mask("causal"))
    causal_blocks = generate_blocks(causal, attention, block_size=1024)
    print(f"batch: {seqlens} (total {causal.total_tokens} tokens)")

    # (a) Cluster topology: same 8 devices, different machine layouts.
    for machines, per_machine in ((1, 8), (2, 4), (4, 2)):
        cluster = ClusterSpec(num_machines=machines,
                              devices_per_machine=per_machine)
        planner = DCPPlanner(cluster, attention, DCPConfig(block_size=1024))
        describe(planner, causal_blocks,
                 f"{machines} machine(s) x {per_machine} devices, causal")

    # (b) Mask sparsity on the 2x4 cluster.
    cluster = ClusterSpec(num_machines=2, devices_per_machine=4)
    for name in ("lambda", "causal_blockwise", "shared_question"):
        mask = make_mask(name) if name != "lambda" else make_mask(
            "lambda", sink=64, window=4096
        )
        batch = BatchSpec.build(seqlens, mask)
        blocks = generate_blocks(batch, attention, block_size=1024)
        planner = DCPPlanner(cluster, attention, DCPConfig(block_size=1024))
        describe(planner, blocks, f"2x4 cluster, {name} mask")

    # (c) Imbalance tolerance: trade computation balance for less comm.
    print("\n-- imbalance tolerance sweep (paper Fig. 20) --")
    for eps in (0.1, 0.4, 1.0):
        planner = DCPPlanner(
            cluster, attention,
            DCPConfig(block_size=1024, eps_inter=eps, eps_intra=eps),
        )
        planner.plan(causal_blocks)
        report = planner.last_placement.comm_report()
        flops = planner.last_placement.flops_per_device()
        print(f"  eps={eps:3.1f}: inter-node "
              f"{report.inter_machine_bytes / 1e6:7.2f} MB, "
              f"flops max/mean {flops.max() / flops.mean():.2f}")


if __name__ == "__main__":
    main()
