"""Train a small GPT end-to-end with DCP under a sparse lambda mask.

Reproduces the paper's §7.4 claim in miniature: swapping the dense
attention implementation for DCP's distributed execution changes the
loss curve only by floating-point noise, while the planner exploits the
lambda mask's sparsity to cut communication.

Run:  python examples/sparse_mask_training.py
"""

import numpy as np

from repro import AttentionSpec, ClusterSpec, DCPConfig, DCPPlanner, make_mask
from repro.model import (
    GPTConfig,
    TinyGPT,
    generate_corpus,
    make_distributed_forward,
    train,
)


def main() -> None:
    mask = make_mask("lambda", sink=8, window=24)
    config = GPTConfig(
        vocab=64, d_model=32, num_layers=2, num_heads=4, num_kv_groups=2,
        head_dim=8, d_ff=64, max_len=128,
    )
    corpus = generate_corpus(config.vocab, seqlen=96, num_sequences=16, seed=7)
    iterations = 120

    # Baseline: dense single-device attention ("MLM").
    dense_model = TinyGPT(config, seed=11)
    dense_losses = train(dense_model, corpus, iterations, mask=mask,
                         learning_rate=0.3)

    # DCP: attention executed through per-batch plans on 4 simulated
    # devices across 2 machines.
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=8)
    planner = DCPPlanner(cluster, attention, DCPConfig(block_size=16))
    forward = make_distributed_forward(planner, attention, block_size=16)
    dcp_model = TinyGPT(config, seed=11)
    dcp_losses = train(dcp_model, corpus, iterations, mask=mask,
                       attention_forward=forward, learning_rate=0.3)

    deviation = max(abs(a - b) for a, b in zip(dense_losses, dcp_losses))
    print(f"lambda mask, {iterations} iterations")
    print(f"  dense (MLM) loss: {dense_losses[0]:.4f} -> {dense_losses[-1]:.4f}")
    print(f"  DCP        loss: {dcp_losses[0]:.4f} -> {dcp_losses[-1]:.4f}")
    print(f"  max |loss difference|: {deviation:.2e}")
    assert deviation < 1e-3, "loss curves must coincide"

    # Show a few sampled points of the two curves side by side.
    print("\n  iter    MLM      DCP")
    for i in range(0, iterations, iterations // 8):
        print(f"  {i:4d}  {dense_losses[i]:7.4f}  {dcp_losses[i]:7.4f}")
    print("\nsparse-mask training complete; curves match (paper Fig. 21)")


if __name__ == "__main__":
    main()
