"""Quickstart: plan, execute and time one DCP training batch.

Mirrors the paper's Listing 2 workflow on the simulated cluster:
construct a dataloader over packed batches, get (local_data, plan)
pairs, execute the plan, and verify the distributed attention output
against a dense reference.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    AttentionSpec,
    ClusterSpec,
    DCPConfig,
    DCPDataloader,
    DCPPlanner,
    make_mask,
)
from repro.data import batches_to_specs, pack_batches, sample_lengths
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs
from repro.sim import simulate_plan


def main() -> None:
    # -- a cluster of 2 machines x 2 devices, and the attention operator --
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=8, num_kv_groups=2, head_dim=64)

    # -- pack a skewed long-context dataset into token-budget batches -----
    lengths = sample_lengths("longdatacollections", 40, seed=0)
    batches = pack_batches(lengths, token_budget=8192, max_seqlen=8192)
    specs = batches_to_specs(batches[:3], make_mask("causal"))
    print(f"packed {len(specs)} batches; first batch lengths: "
          f"{[s.seqlen for s in specs[0].sequences]}")

    # -- the DCP planner + look-ahead dataloader (paper Listing 2) --------
    planner = DCPPlanner(cluster, attention, DCPConfig(block_size=512))
    dataloader = DCPDataloader(specs, planner, lookahead=2)

    for iteration, (local_data, plan) in enumerate(dataloader):
        tokens = {dev: data.tokens for dev, data in local_data.items()}
        print(f"\niteration {iteration}: tokens per device {tokens}")

        # Execute the plan on the simulated cluster with random Q/K/V.
        executor = SimExecutor(plan)
        inputs = BatchInputs.random(plan.block_set, seed=iteration)
        executor.load_inputs(inputs)
        executor.run()
        outputs = executor.gather_outputs()

        # Verify numerics against the dense reference.
        references = reference_batch_outputs(plan.block_set, inputs)
        for out, ref in zip(outputs, references):
            np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)
        print(f"  numerics OK; communicated "
              f"{executor.fabric.total_bytes / 1e6:.2f} MB "
              f"({executor.fabric.inter_machine_bytes / 1e6:.2f} MB inter-node)")

        # Simulated wall-clock of the attention forward pass.
        timing = simulate_plan(plan)
        print(f"  simulated attention forward: "
              f"{timing.iteration_time * 1e3:.3f} ms")

    print("\nquickstart complete")


if __name__ == "__main__":
    main()
