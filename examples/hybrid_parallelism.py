"""Composing DCP with tensor and pipeline parallelism (paper §6.2).

Sweeps TP x DCP x PP topologies of a 32-GPU cluster for the paper's 8B
GPT and prints the iteration-time estimate of each, showing the
trade-off the paper describes: TP burns NVSwitch bandwidth but shrinks
per-rank attention work, PP trades communication for pipeline bubbles,
and DCP absorbs whatever ranks remain.

Run:  python examples/hybrid_parallelism.py
"""

from repro import ClusterSpec, DCPConfig, make_mask
from repro.blocks import BatchSpec
from repro.data import pack_batches, sample_lengths
from repro.parallel import HybridConfig, RankTopology, hybrid_iteration_time
from repro.sim.modelcost import GPT_8B


def main() -> None:
    cluster = ClusterSpec(num_machines=4, devices_per_machine=8)
    lengths = sample_lengths("longdatacollections", 60, seed=3)
    packed = pack_batches(lengths, token_budget=65536, max_seqlen=16384)
    batch = BatchSpec.build(packed[0], make_mask("causal"))
    print(
        f"batch: {len(batch.sequences)} sequences, "
        f"{batch.total_tokens} tokens, cluster: 4 x 8 GPUs\n"
    )

    topologies = [
        RankTopology(tp=1, dcp=32, pp=1),
        RankTopology(tp=4, dcp=8, pp=1),
        RankTopology(tp=8, dcp=4, pp=1),
        RankTopology(tp=4, dcp=4, pp=2),
        RankTopology(tp=4, dcp=2, pp=4),
    ]
    print(f"{'topology':<22}{'iter (s)':>10}{'bubble':>9}{'tp comm (s)':>13}")
    best = None
    for topology in topologies:
        config = HybridConfig(
            topology=topology,
            num_microbatches=max(2 * topology.pp, 2),
            dcp_config=DCPConfig(block_size=2048, restarts=1),
        )
        result = hybrid_iteration_time(batch, cluster, config, model=GPT_8B)
        print(
            f"{topology.describe():<22}"
            f"{result.iteration_time:>10.3f}"
            f"{result.pipeline.bubble_fraction:>9.1%}"
            f"{result.tp_comm_time:>13.3f}"
        )
        if best is None or result.iteration_time < best[1]:
            best = (topology, result.iteration_time)

    print(
        f"\nbest topology: {best[0].describe()} "
        f"at {best[1]:.3f} s per iteration"
    )


if __name__ == "__main__":
    main()
