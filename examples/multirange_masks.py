"""Training with masks beyond the paper's two-range limit (§5 extension).

The paper's kernels support at most two attendable ranges per token and
defer richer masks to FlexAttention/FlashMask.  This reproduction lifts
that limit: LongNet-style dilated block attention and Longformer-style
global tokens plan, execute and verify end to end.

Run:  python examples/multirange_masks.py
"""

import numpy as np

from repro import AttentionSpec, ClusterSpec, DCPConfig, DCPPlanner
from repro.blocks import BatchSpec, generate_blocks
from repro.masks import CausalMask, DilatedBlockMask, GlobalTokenMask
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs
from repro.sim import simulate_plan


def main() -> None:
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=32)
    seqlens = [1536, 512]

    masks = {
        "causal (2-range)": CausalMask(),
        "dilated block": DilatedBlockMask(block=64, stride=4, window=256),
        "global tokens": GlobalTokenMask(every=256, window=256),
    }
    print(f"{'mask':<20}{'ranges/row':>11}{'sparsity':>10}"
          f"{'fw (ms)':>9}{'comm (MB)':>11}")
    for name, mask in masks.items():
        max_ranges = (
            mask.max_ranges_per_row(seqlens[0])
            if hasattr(mask, "max_ranges_per_row")
            else 2
        )
        batch = BatchSpec.build(seqlens, mask)
        block_set = generate_blocks(batch, attention, block_size=128)
        planner = DCPPlanner(cluster, attention, DCPConfig(block_size=128))
        plan = planner.plan(block_set, cluster)

        executor = SimExecutor(plan)
        inputs = BatchInputs.random(block_set, seed=1)
        executor.load_inputs(inputs)
        executor.run()
        for out, ref in zip(
            executor.gather_outputs(),
            reference_batch_outputs(block_set, inputs),
        ):
            np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)

        timing = simulate_plan(plan)
        print(
            f"{name:<20}{max_ranges:>11}"
            f"{mask.sparsity_vs_causal(seqlens[0]):>10.2f}"
            f"{timing.iteration_time * 1e3:>9.3f}"
            f"{plan.total_comm_bytes() / 1e6:>11.2f}"
        )
    print("\nall masks verified against the dense reference")


if __name__ == "__main__":
    main()
