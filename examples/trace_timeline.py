"""Visualize simulated execution timelines (DCP vs. a static baseline).

Plans one batch with DCP and with ring attention, replays both through
the timing simulator, prints ASCII Gantt charts (computation vs.
communication overlap — the quantity Fig. 22 decomposes) and writes
Chrome trace files loadable in chrome://tracing or Perfetto.

Run:  python examples/trace_timeline.py
"""

import os

from repro import AttentionSpec, ClusterSpec, DCPConfig, DCPPlanner, make_mask
from repro.baselines import RingAttentionPlanner
from repro.blocks import BatchSpec, generate_blocks
from repro.sim import ascii_gantt, simulate_plan, write_chrome_trace


def main() -> None:
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=8, num_kv_groups=2, head_dim=128)
    batch = BatchSpec.build([16384, 4096, 2048], make_mask("lambda"))
    block_set = generate_blocks(batch, attention, block_size=1024)

    out_dir = os.path.join(os.path.dirname(__file__), "traces")
    os.makedirs(out_dir, exist_ok=True)

    systems = {
        "dcp": DCPPlanner(
            cluster, attention, DCPConfig(block_size=1024)
        ),
        "ring": RingAttentionPlanner(zigzag=True),
    }
    for name, planner in systems.items():
        plan = planner.plan(block_set, cluster)
        result = simulate_plan(plan)
        print(f"\n== {name} ==")
        print(ascii_gantt(result, width=64))
        breakdown = result.breakdown()
        print(
            f"exposed comm {breakdown['non_ovlp_comm'] * 1e3:.3f} ms, "
            f"overlap {breakdown['overlap'] * 1e3:.3f} ms"
        )
        path = os.path.join(out_dir, f"{name}.trace.json")
        write_chrome_trace(result, path)
        print(f"chrome trace written to {path}")


if __name__ == "__main__":
    main()
