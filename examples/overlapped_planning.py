"""Hide planning behind execution with the overlap pipeline (§6.1).

Drives :class:`repro.pipeline.OverlapPipeline` over the Fig. 18 sweep
configuration — background planner workers plan batch ``i + kappa``
while batch ``i`` "executes" (the 8B-GPT cost-model iteration time) —
and prints the *measured* overlap: how much planning was hidden, where
the stalls were, how often the plan cache short-circuited a worker.
It then replays the measured per-iteration times through the analytic
model (``simulate_planning_overlap``) to show measurement and model
agreeing, and writes a Chrome/Perfetto trace of the pipeline timeline.

Run:  python examples/overlapped_planning.py           # scaled-down, ~30 s
      python examples/overlapped_planning.py --full    # Fig. 18 sweep size
"""

import argparse
import json
import os

from repro.bench import BenchScale, PAPER_MASKS, make_batches
from repro.core import DCPPlanner, PlanCache, simulate_planning_overlap
from repro.pipeline import (
    OverlapPipeline,
    PipelineRunner,
    cost_model_executor,
)
from repro.sim import overlap_chrome_trace


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the actual Fig. 18 sweep point (32768 tokens, block "
        "512); default scales tokens down 4x for a quick demo",
    )
    parser.add_argument("--kappa", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    tokens = 32768 if args.full else 8192
    scale = BenchScale.sweep(
        num_batches=6,
        token_budget=tokens,
        max_seqlen=tokens,
        block_size=512,
    )
    batches = make_batches(
        "longdatacollections", scale, PAPER_MASKS["causal"]()
    )[:6] * 2  # second cycle repeats signatures: the cache's moment
    planner = DCPPlanner(scale.cluster, scale.attention, scale.dcp_config())
    cache = PlanCache(planner, capacity=32)

    pipeline = OverlapPipeline(
        batches,
        planner,
        lookahead=args.kappa,
        max_workers=args.workers,
        cache=cache,
    )
    print(
        f"planning {len(batches)} batches ({tokens} tokens, 2x4 devices) "
        f"with kappa={args.kappa}, {args.workers} thread workers ..."
    )
    report = PipelineRunner(
        pipeline, execute=cost_model_executor(time_scale=1.0)
    ).run()
    stats = report.stats

    print("\n== measured overlap ==")
    print(f"iterations            {stats.iterations}")
    print(f"planning total        {stats.total_plan_s:.3f} s")
    print(f"execution total       {stats.total_exec_s:.3f} s")
    print(f"stalls (exposed plan) {stats.total_stall_s:.3f} s "
          f"in {stats.stall_count} iteration(s)")
    print(f"hidden fraction       {stats.hidden_fraction:.3f} "
          f"(steady state: {stats.steady_hidden_fraction:.3f})")
    print(f"prefetch queue depth  mean {stats.queue_depth_mean:.1f} / "
          f"max {stats.queue_depth_max}")
    if stats.plan_cache:
        print(f"plan cache            {stats.plan_cache['hits']} hits / "
              f"{stats.plan_cache['misses']} misses "
              f"(rate {stats.plan_cache['hit_rate']:.2f})")

    print("\niter  plan_s   exec_s   stall_s  cache")
    for record in stats.records:
        print(
            f"{record.index:>4}  {record.plan_s:7.3f}  {record.exec_s:7.3f}"
            f"  {record.stall:7.3f}  {'hit' if record.cache_hit else '-'}"
        )

    # The analytic §6.1 model fed with the measured per-iteration times
    # should predict roughly the stalls the pipeline actually measured.
    predicted = simulate_planning_overlap(
        [r.plan_s for r in stats.records],
        [r.exec_s for r in stats.records],
        cores_per_machine=args.workers,
        lookahead=args.kappa,
    )
    print(
        f"\nanalytic model on the measured profile: stall fraction "
        f"{predicted.stall_fraction:.3f} "
        f"(measured {stats.total_stall_s / max(stats.wall_s, 1e-9):.3f})"
    )

    out_dir = os.path.join(os.path.dirname(__file__), "traces")
    os.makedirs(out_dir, exist_ok=True)
    trace_path = os.path.join(out_dir, "overlap_pipeline.json")
    with open(trace_path, "w") as handle:
        json.dump(overlap_chrome_trace(report.timeline), handle)
    print(f"wrote {trace_path} (open in chrome://tracing or Perfetto)")


if __name__ == "__main__":
    main()
