"""Block-size autotuning and distributed look-ahead planning (§6.1/§7.1).

First runs the paper's block-size search (512..4096, automated against
the timing simulator) on a stream of packed batches, then trains
through a :class:`DistributedDataloader`: plans are produced by a
planner pool spread over two "machines" and distributed through the
in-memory KV store, exactly the paper's Redis pipeline.

Run:  python examples/autotune_and_pool.py
"""

from repro import (
    AttentionSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    autotune_block_size,
    make_mask,
)
from repro.core import DistributedDataloader, KVStore, PlannerPool
from repro.data import batches_to_specs, pack_batches, sample_lengths
from repro.sim import simulate_plan


def main() -> None:
    cluster = ClusterSpec(num_machines=2, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=8, num_kv_groups=2, head_dim=64)
    lengths = sample_lengths("longdatacollections", 60, seed=7)
    batches = batches_to_specs(
        pack_batches(lengths, token_budget=16384, max_seqlen=16384),
        make_mask("causal"),
    )

    # -- the paper's block-size search, automated -------------------------
    result = autotune_block_size(
        batches,
        cluster,
        attention=attention,
        config=DCPConfig(restarts=1),
        candidates=(512, 1024, 2048, 4096),
        probe_batches=2,
    )
    print("block-size search (attn = simulated fw+bw per batch):")
    print(result.table())
    print(f"-> selected block size {result.best}\n")

    # -- distributed look-ahead planning through the KV store -------------
    planner = DCPPlanner(
        cluster, attention, DCPConfig(block_size=result.best, restarts=1)
    )
    store = KVStore(host_machine=0)
    with PlannerPool(
        planner, store, num_machines=2, cores_per_machine=2
    ) as pool:
        loader = DistributedDataloader(batches[:4], pool, lookahead=2)
        for iteration, (local_data, plan) in enumerate(loader):
            timing = simulate_plan(plan)
            tokens = [data.tokens for data in local_data.values()]
            print(
                f"iteration {iteration}: tokens/device {tokens}, "
                f"attention fw {timing.iteration_time * 1e3:.3f} ms"
            )
    wire = sum(client.wire_bytes() for client in pool.clients)
    print(
        f"\nplan distribution: {len(store.keys())} plans in the store, "
        f"{store.size_bytes() / 1e6:.2f} MB resident, "
        f"{wire / 1e6:.2f} MB over the wire"
    )


if __name__ == "__main__":
    main()
