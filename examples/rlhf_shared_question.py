"""RLHF-style training with the shared-question mask (paper Fig. 6d/7).

In RLHF/DPO post-training one question is paired with several candidate
answers.  The shared-question mask lets answers share the question
prefix without attending to each other.  Static CP wastes most of its
communication here (paper Fig. 7: 38 of 48 KV transfers redundant);
DCP's mask-aware planning removes that waste.

This example compares TE (static) against DCP on shared-question
batches and prints the communication and simulated-time advantage.

Run:  python examples/rlhf_shared_question.py
"""

import numpy as np

from repro import (
    AttentionSpec,
    BatchSpec,
    ClusterSpec,
    DCPConfig,
    DCPPlanner,
    generate_blocks,
    make_mask,
)
from repro.baselines import TransformerEnginePlanner
from repro.runtime import BatchInputs, SimExecutor, reference_batch_outputs
from repro.sim import simulate_plan


def main() -> None:
    cluster = ClusterSpec(num_machines=2, devices_per_machine=4)
    attention = AttentionSpec(num_q_heads=8, num_kv_groups=2, head_dim=128)

    # Each sequence: one question (20%) + 4 answers (20% each).
    mask = make_mask("shared_question", num_answers=4, answer_fraction=0.2)
    seqlens = [16384, 12288, 8192, 8192, 4096]
    batch = BatchSpec.build(seqlens, mask)
    block_set = generate_blocks(batch, attention, block_size=1024)
    print(f"batch: {seqlens} tokens with shared-question masks")
    print(f"mask sparsity vs causal: "
          f"{mask.sparsity_vs_causal(16384):.2f}")

    te_plan = TransformerEnginePlanner().plan(block_set, cluster)
    dcp = DCPPlanner(cluster, attention, DCPConfig(block_size=1024))
    dcp_plan = dcp.plan(block_set)

    for name, plan in (("TE (static)", te_plan), ("DCP", dcp_plan)):
        forward = simulate_plan(plan)
        backward = simulate_plan(plan, backward=True)
        print(f"\n{name}:")
        print(f"  communication: {plan.total_comm_bytes() / 1e6:9.2f} MB")
        print(f"  attention fw:  {forward.iteration_time * 1e3:9.3f} ms")
        print(f"  attention bw:  {backward.iteration_time * 1e3:9.3f} ms")

    # Verify DCP numerics on a smaller instance (dense reference is O(L^2)).
    small_batch = BatchSpec.build([512, 384], mask)
    small_blocks = generate_blocks(small_batch, attention, block_size=64)
    small_plan = DCPPlanner(
        cluster, attention, DCPConfig(block_size=64)
    ).plan(small_blocks)
    executor = SimExecutor(small_plan)
    inputs = BatchInputs.random(small_blocks, seed=0)
    executor.load_inputs(inputs)
    executor.run()
    for out, ref in zip(
        executor.gather_outputs(), reference_batch_outputs(small_blocks, inputs)
    ):
        np.testing.assert_allclose(out, ref, rtol=2e-4, atol=2e-5)
    print("\nnumerics verified against dense reference")


if __name__ == "__main__":
    main()
