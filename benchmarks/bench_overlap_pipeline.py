"""Overlap-pipeline benchmark: measured §6.1 planning overlap.

Drives :class:`repro.pipeline.OverlapPipeline` over the Fig. 18 sweep
configuration (32768 tokens, 512-token blocks, causal mask, 2x4
devices) and *measures* — with real planner workers racing real wall
time — the fraction of planning hidden behind execution for lookahead
``kappa`` in {1, 2, 4} and several worker counts, on both thread and
process backends.  Execution occupies the 8B-GPT cost-model iteration
time (:func:`repro.pipeline.cost_model_executor`), so the plan/exec
ratio is the paper's, not an artifact of this machine.

Each cell also replays the measured per-iteration plan/exec times
through the analytic model (:func:`simulate_planning_overlap`) so the
report shows measurement and model side by side.

``--streaming`` measures the online mode instead: the same Fig. 18
sweep point planned over a *generator* feeding the pipeline as the
packer emits (:class:`repro.pipeline.StreamingOverlapPipeline`), side
by side with the fixed-stream cell so the report records hidden
fraction *parity* between the two; three mid-stream device-removal
cells comparing how the prefetch window re-plans (``scratch`` = whole
window cold, the pre-delta behavior; ``delta`` = only affected jobs,
warm-started — the report's ``replan_cost_ratio`` and the acceptance
target ≤0.5; ``window`` = every job through the same warm primitive,
proven ``plan_fingerprint``-identical to delta); a KV-backend pair
comparing consumer wire bytes with monolithic vs per-device partial
plan fetches; and a KV delta-replan cell measuring the conditional
republish/re-fetch savings (``refetch_saved_bytes``).  The streaming
report merges into ``BENCH_overlap.json`` under ``"streaming"``.

``--transport`` measures plan transport instead: the same batches
planned on the process backend once per transport (``pickle`` = the
historical object-graph round-trip, ``wire`` = columnar bytes over the
result pipe, ``shm`` = columnar bytes through the shared-memory plan
ring), recording per-transport payload bytes and encode/move/decode
seconds, the wire-vs-pickle compaction ratio, and the headline
``overhead_ratio`` — (encode + move + decode) / planning time on the
zero-copy path, the §6.1 "shipping plans must not erase parallel
planning" bound (acceptance: ≤ 0.05 at the Fig. 18 sweep point).  The
full run merges into ``BENCH_overlap.json`` under ``"transport"``.

``--obs`` runs the observability benchmark instead
(:mod:`repro.obs.bench`): tracer/metrics overhead ratios measured on
the smoke workload, the traced telemetry workload across every
instrumented surface, and the merged Perfetto trace (planner stages,
pipeline iterations, transport spans, simulated execution on one
epoch).  The full run writes ``BENCH_obs.json`` + ``TRACE_obs.json``
(trace at the Fig. 18 sweep point); ``--obs --smoke`` writes scratch
files and *gates* on the overhead ceilings recorded in the tracked
``BENCH_obs.json`` plus required-metric presence.

Writes ``BENCH_overlap.json`` at the repo root.  ``--smoke`` runs a
small configuration and *gates*: it fails (exit 1) if the measured
steady-state hidden fraction falls below the ``smoke_floor`` recorded
in the tracked ``BENCH_overlap.json`` — the regression guard wired
into ``benchmarks/run_tier1.sh``.  ``--streaming --smoke`` gates the
streaming cell on the same fixed-stream floor.

Usage::

    PYTHONPATH=src python benchmarks/bench_overlap_pipeline.py              # full
    PYTHONPATH=src python benchmarks/bench_overlap_pipeline.py --smoke      # gate
    PYTHONPATH=src python benchmarks/bench_overlap_pipeline.py --streaming  # online
    PYTHONPATH=src python benchmarks/bench_overlap_pipeline.py --streaming --smoke
    PYTHONPATH=src python benchmarks/bench_overlap_pipeline.py --transport  # plan wire
    PYTHONPATH=src python benchmarks/bench_overlap_pipeline.py --transport --smoke
    PYTHONPATH=src python benchmarks/bench_overlap_pipeline.py --obs        # telemetry
    PYTHONPATH=src python benchmarks/bench_overlap_pipeline.py --obs --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import platform
import subprocess
import time
from typing import Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_overlap.json")
SMOKE_OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_overlap.smoke.json")
STREAMING_SMOKE_OUTPUT_PATH = os.path.join(
    REPO_ROOT, "BENCH_overlap.streaming.smoke.json"
)
TRANSPORT_SMOKE_OUTPUT_PATH = os.path.join(
    REPO_ROOT, "BENCH_overlap.transport.smoke.json"
)
OBS_OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_obs.json")
OBS_SMOKE_OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_obs.smoke.json")
OBS_TRACE_PATH = os.path.join(REPO_ROOT, "TRACE_obs.json")
OBS_SMOKE_TRACE_PATH = os.path.join(REPO_ROOT, "TRACE_obs.smoke.json")

#: Steady-state hidden fraction the smoke configuration must clear.
#: The smoke cell is provisioned so planning hides entirely in steady
#: state (execution ~2x planning throughput); 0.5 leaves headroom for
#: CI scheduling noise while still catching a broken pipeline (a
#: serialized pipeline measures ~0.0).
DEFAULT_SMOKE_FLOOR = 0.5

#: Ceiling on (delta replan cost) / (whole-window cold replan cost) the
#: streaming smoke must stay under.  The full Fig. 18 sweep point
#: targets <= 0.5; the smoke cells are tiny (planning is milliseconds,
#: so fixed overheads weigh more) and noisy on shared CI runners, hence
#: the looser default.  Overridable via the tracked
#: BENCH_overlap.json["streaming"]["replan_cost_ratio_max"].
DEFAULT_REPLAN_RATIO_CEILING = 0.8

#: Ceiling on (encode + move + decode) / planning seconds for the
#: zero-copy (shm) transport at the full Fig. 18 sweep point — the
#: acceptance bound: shipping a plan out of its worker must cost at
#: most 5% of planning it.
DEFAULT_TRANSPORT_OVERHEAD_CEILING = 0.05

#: The smoke transport cells plan tiny batches, so fixed per-plan costs
#: weigh more than at the sweep point and shared CI runners add noise;
#: the measured smoke ratio is ~0.03, so 0.15 leaves ~4x headroom while
#: still catching a regressed transport (an accidental per-device
#: re-encode or double serialization lands well above it).  Overridable
#: via the tracked BENCH_overlap.json["transport"]["smoke_overhead_ratio_max"].
DEFAULT_TRANSPORT_SMOKE_CEILING = 0.15

FULL_KAPPAS = (1, 2, 4)
FULL_WORKERS = (2, 4)


def _git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def _measure_cell(
    scale,
    batches,
    kappa: int,
    workers: int,
    backend: str,
    time_scale: float,
) -> Dict:
    """One (kappa, workers, backend) pipeline run, fresh planner+cache."""
    from repro.core import DCPPlanner, PlanCache, simulate_planning_overlap
    from repro.pipeline import (
        OverlapPipeline,
        PipelineRunner,
        cost_model_executor,
    )

    planner = DCPPlanner(scale.cluster, scale.attention, scale.dcp_config())
    cache = PlanCache(planner, capacity=64)
    pipeline = OverlapPipeline(
        batches,
        planner,
        lookahead=kappa,
        max_workers=workers,
        backend=backend,
        cache=cache,
    )
    runner = PipelineRunner(
        pipeline, execute=cost_model_executor(time_scale=time_scale)
    )
    report = runner.run()
    stats = report.stats

    # Replay the measured profile through the analytic model: does the
    # §6.1 simulation agree with what the real pipeline measured?
    plan_times = [r.plan_s for r in stats.records]
    exec_times = [r.exec_s for r in stats.records]
    predicted = simulate_planning_overlap(
        plan_times,
        exec_times,
        cores_per_machine=workers,
        lookahead=kappa,
    )

    row = {
        "kappa": kappa,
        "workers": workers,
        "backend": backend,
        "iterations": stats.iterations,
        "hidden_fraction": round(stats.hidden_fraction, 4),
        "steady_hidden_fraction": round(stats.steady_hidden_fraction, 4),
        "stall_count": stats.stall_count,
        "steady_stall_count": stats.steady_stall_count,
        "total_stall_s": round(stats.total_stall_s, 4),
        "mean_plan_s": round(
            stats.total_plan_s / max(stats.iterations, 1), 4
        ),
        "mean_exec_s": round(
            stats.total_exec_s / max(stats.iterations, 1), 4
        ),
        "queue_depth_mean": round(stats.queue_depth_mean, 2),
        "queue_depth_max": stats.queue_depth_max,
        "cache_hit_rate": round(
            stats.plan_cache["hit_rate"] if stats.plan_cache else 0.0, 4
        ),
        "wall_s": round(stats.wall_s, 3),
        "predicted_stall_fraction": round(predicted.stall_fraction, 4),
    }
    print(
        f"kappa={kappa} workers={workers} backend={backend:<7} "
        f"hidden={row['hidden_fraction']:.3f} "
        f"steady={row['steady_hidden_fraction']:.3f} "
        f"stalls={row['stall_count']} wall={row['wall_s']:.1f}s "
        f"cache={row['cache_hit_rate']:.2f}"
    )
    return row


def run_overlap_bench(
    token_budget: int = 32768,
    block_size: int = 512,
    mask_name: str = "causal",
    num_batches: int = 8,
    cycles: int = 2,
    kappas: Sequence[int] = FULL_KAPPAS,
    worker_counts: Sequence[int] = FULL_WORKERS,
    process_backend: bool = True,
    time_scale: float = 1.0,
    batches=None,
) -> Dict:
    """Measure the overlap grid on the Fig. 18 sweep configuration.

    ``cycles`` repeats the batch list so the plan cache sees recurring
    signatures (bucketed-batching reality): cycle 2+ plans are cache
    hits, which is part of what the pipeline is designed to exploit.
    ``batches`` overrides the dataset-driven batch list (the smoke
    configuration supplies its own: at tiny token budgets the paper
    datasets degenerate to identical batches, which would turn the
    whole run into one plan plus cache hits).
    """
    from repro.bench import BenchScale, PAPER_MASKS, make_batches

    scale = BenchScale.sweep(
        num_batches=num_batches,
        token_budget=int(token_budget),
        max_seqlen=int(token_budget),
        block_size=int(block_size),
    )
    if batches is None:
        batches = make_batches(
            "longdatacollections", scale, PAPER_MASKS[mask_name]()
        )[:num_batches]
    batches = list(batches) * max(cycles, 1)

    rows: List[Dict] = []
    for kappa in kappas:
        for workers in worker_counts:
            rows.append(
                _measure_cell(
                    scale, batches, kappa, workers, "thread", time_scale
                )
            )
    if process_backend:
        for workers in worker_counts:
            rows.append(
                _measure_cell(
                    scale, batches, 2, workers, "process", time_scale
                )
            )

    return {
        "benchmark": "overlap_pipeline",
        "config": {
            "token_budget": int(token_budget),
            "block_size": int(block_size),
            "mask": mask_name,
            "cluster": "2x4 (sweep)",
            "num_batches": num_batches,
            "cycles": cycles,
            "time_scale": time_scale,
        },
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke_floor": DEFAULT_SMOKE_FLOOR,
        "rows": rows,
    }


def _streaming_row(stats, kappa: int, workers: int, mode: str) -> Dict:
    """Row shape shared by the fixed/streaming/replan cells."""
    return {
        "mode": mode,
        "kappa": kappa,
        "workers": workers,
        "iterations": stats.iterations,
        "hidden_fraction": round(stats.hidden_fraction, 4),
        "steady_hidden_fraction": round(stats.steady_hidden_fraction, 4),
        "stall_count": stats.stall_count,
        "total_stall_s": round(stats.total_stall_s, 4),
        "mean_plan_s": round(stats.total_plan_s / max(stats.iterations, 1), 4),
        "mean_exec_s": round(stats.total_exec_s / max(stats.iterations, 1), 4),
        "cache_hit_rate": round(
            stats.plan_cache["hit_rate"] if stats.plan_cache else 0.0, 4
        ),
        "replans": stats.replans,
        "cluster_events": stats.cluster_events,
        "plan_retries": stats.plan_retries,
        "partial_replans": stats.partial_replans,
        "replan_jobs_reused": stats.replan_jobs_reused,
        "replan_plan_s": round(stats.replan_plan_s, 4),
        "wall_s": round(stats.wall_s, 3),
    }


def _settle_window(pipeline, timeout: float = 30.0) -> None:
    """Wait for every prefetch-window job to finish planning.

    The replan cells fire their device-removal only after the window
    settled, so every cell (delta / window / scratch) re-dispatches the
    same fully-planned window — classification is deterministic and the
    measured re-plan cost compares like with like.
    """
    import time as _time

    deadline = _time.monotonic() + timeout
    while _time.monotonic() < deadline:
        if all(
            item.ticket is None or item.ticket.ready()
            for item in pipeline._pending
        ):
            return
        _time.sleep(0.005)


def _measure_streaming_cell(
    scale,
    batches,
    kappa: int,
    workers: int,
    time_scale: float,
    mode: str = "streaming",
    remove_machine_at: Optional[int] = None,
    replan_mode: str = "scratch",
    fingerprints: Optional[List] = None,
    use_cache: bool = True,
) -> Dict:
    """One streaming-pipeline run, fed by a generator (no upfront length).

    ``mode="fixed"`` runs the same config through the fixed-list
    pipeline for the parity comparison; ``remove_machine_at`` fires a
    device-removal event after that iteration's execution (the replan
    cells), with ``replan_mode`` selecting how the window responds
    (``"delta"`` / ``"window"`` / ``"scratch"``).  ``fingerprints``, if
    given, collects ``plan_fingerprint`` of every yielded plan so the
    delta and whole-window cells can be proven identical.  The replan
    cells run cache-less (``use_cache=False``) so every re-dispatched
    job's planning cost is actually measured and the delta/window
    comparison is free of cache-policy differences.
    """
    from repro.core import DCPPlanner, PlanCache
    from repro.pipeline import (
        OverlapPipeline,
        PipelineRunner,
        StreamingOverlapPipeline,
        cost_model_executor,
        plan_fingerprint,
    )
    from repro.sim import ClusterEventSource

    planner = DCPPlanner(scale.cluster, scale.attention, scale.dcp_config())
    cache = PlanCache(planner, capacity=64) if use_cache else None
    events = None
    if mode == "fixed":
        pipeline = OverlapPipeline(
            list(batches), planner, lookahead=kappa, max_workers=workers,
            backend="thread", cache=cache,
        )
    else:
        if remove_machine_at is not None:
            events = ClusterEventSource(scale.cluster)
        pipeline = StreamingOverlapPipeline(
            (batch for batch in batches),  # generator: the online path
            planner, lookahead=kappa, max_workers=workers,
            backend="thread", cache=cache, events=events,
            replan_mode=replan_mode,
        )

    def fire(index: int, _info: dict) -> None:
        if events is not None and index == remove_machine_at:
            _settle_window(pipeline)
            events.remove_machines(1)

    inner_execute = cost_model_executor(time_scale=time_scale)

    def execute(local_data, plan):
        if fingerprints is not None:
            fingerprints.append(plan_fingerprint(plan))
        return inner_execute(local_data, plan)

    runner = PipelineRunner(
        pipeline,
        execute=execute,
        on_iteration=fire if remove_machine_at is not None else None,
    )
    stats = runner.run().stats
    row = _streaming_row(stats, kappa, workers, mode)
    if mode in ("fixed", "streaming"):
        # Plan-fetch latency split by serving path (cache hit vs
        # planner dispatch) — the planner-as-a-service p50/p99
        # baseline, read off the pipeline's metrics registry.
        from repro.obs.bench import plan_fetch_summary

        row["plan_fetch"] = plan_fetch_summary(pipeline.metrics.snapshot())
    if remove_machine_at is not None:
        row["remove_machine_at"] = remove_machine_at
        row["replan_mode"] = replan_mode
    print(
        f"mode={mode:<13} kappa={kappa} workers={workers} "
        f"hidden={row['hidden_fraction']:.3f} "
        f"steady={row['steady_hidden_fraction']:.3f} "
        f"replans={row['replans']} reused={row['replan_jobs_reused']} "
        f"replan_s={row['replan_plan_s']:.2f} wall={row['wall_s']:.1f}s"
    )
    return row


def _measure_kv_consumer_bytes(
    scale, batches, kappa: int, workers: int, time_scale: float,
    partial: bool,
) -> Dict:
    """KV-backend cell: every device pulls its plan from the store.

    With ``partial=False`` each device pulls the monolithic plan; with
    ``partial=True`` only the shared skeleton plus its own instruction
    stream — the per-device partial fetch whose wire-byte saving the
    §6.1 accounting is after.
    """
    from repro.core import DCPPlanner, KVStore, PlannerPool
    from repro.pipeline import (
        KVPlannerBackend,
        PipelineRunner,
        StreamingOverlapPipeline,
        cost_model_executor,
    )

    planner = DCPPlanner(scale.cluster, scale.attention, scale.dcp_config())
    store = KVStore()
    pool = PlannerPool(
        planner, store, num_machines=2, cores_per_machine=workers,
        partial_plans=partial,
    )
    backend = KVPlannerBackend(pool, own_pool=True, per_device_fetch=True)
    pipeline = StreamingOverlapPipeline(
        (batch for batch in batches), planner, lookahead=kappa,
        backend=backend,
    )
    runner = PipelineRunner(
        pipeline, execute=cost_model_executor(time_scale=time_scale)
    )
    stats = runner.run().stats
    row = {
        "mode": "kv_partial" if partial else "kv_full",
        "kappa": kappa,
        "iterations": stats.iterations,
        "steady_hidden_fraction": round(stats.steady_hidden_fraction, 4),
        "consumer_wire_bytes": backend.consumer_wire_bytes,
        "consumer_wire_bytes_per_iteration": int(
            backend.consumer_wire_bytes / max(stats.iterations, 1)
        ),
        "store_traffic": store.traffic,
        "wall_s": round(stats.wall_s, 3),
    }
    print(
        f"mode={row['mode']:<10} kappa={kappa} "
        f"consumer_bytes={row['consumer_wire_bytes']} "
        f"wall={row['wall_s']:.1f}s"
    )
    return row


def _measure_kv_replan_cell(
    scale, batches, kappa: int, workers: int, time_scale: float,
    event_at: int,
) -> Dict:
    """Delta re-plan through the full KV distribution path.

    A mid-stream link degradation (inter-machine bandwidth halved)
    re-dispatches the window — the plans are shape-compatible but were
    optimized under stale link costs, so the conservative delta policy
    re-plans them warm.  The warm re-plans adopt the previous placement
    and serialize to byte-identical streams; the pool's conditional
    per-device writes then republish *nothing* per device and consumers
    re-fetching with version cursors move only the skeleton — the §6.1
    wire win of delta re-planning, measured end to end
    (``refetch_saved_bytes``/``device_entries_unchanged``).  A device
    removal, by contrast, genuinely changes every stream; its re-plan
    cost is what the thread-backend replan cells compare.
    """
    from repro.core import DCPPlanner, KVStore, PlannerPool
    from repro.pipeline import (
        KVPlannerBackend,
        PipelineRunner,
        StreamingOverlapPipeline,
        cost_model_executor,
    )
    from repro.sim import ClusterEventSource

    planner = DCPPlanner(scale.cluster, scale.attention, scale.dcp_config())
    store = KVStore()
    pool = PlannerPool(
        planner, store, num_machines=2, cores_per_machine=workers,
        partial_plans=True,
    )
    backend = KVPlannerBackend(pool, own_pool=True, per_device_fetch=True)
    events = ClusterEventSource(scale.cluster)
    pipeline = StreamingOverlapPipeline(
        (batch for batch in batches), planner, lookahead=kappa,
        backend=backend, events=events, replan_mode="delta",
    )

    def fire(index: int, _info: dict) -> None:
        if index == event_at:
            _settle_window(pipeline)
            events.resize(
                inter_bandwidth=scale.cluster.inter_bandwidth / 2
            )

    runner = PipelineRunner(
        pipeline,
        execute=cost_model_executor(time_scale=time_scale),
        on_iteration=fire,
    )
    stats = runner.run().stats
    row = {
        "mode": "kv_replan_delta",
        "kappa": kappa,
        "iterations": stats.iterations,
        "replans": stats.replans,
        "partial_replans": stats.partial_replans,
        "replan_jobs_reused": stats.replan_jobs_reused,
        "consumer_wire_bytes": backend.consumer_wire_bytes,
        "refetch_saved_bytes": pool.refetch_saved_bytes,
        "device_entries_written": pool.device_entries_written,
        "device_entries_unchanged": pool.device_entries_unchanged,
        "event_at": event_at,
        "wall_s": round(stats.wall_s, 3),
    }
    print(
        f"mode={row['mode']:<14} kappa={kappa} replans={row['replans']} "
        f"refetch_saved={row['refetch_saved_bytes']} "
        f"entries_unchanged={row['device_entries_unchanged']} "
        f"wall={row['wall_s']:.1f}s"
    )
    return row


def run_streaming_bench(
    token_budget: int = 32768,
    block_size: int = 512,
    mask_name: str = "causal",
    num_batches: int = 8,
    cycles: int = 2,
    kappa: int = 2,
    workers: int = 4,
    kv_batches: int = 4,
    time_scale: float = 1.0,
    batches=None,
) -> Dict:
    """Streaming vs fixed parity + replan + KV wire-byte cells.

    The fixed and streaming cells run the identical batch stream and
    pipeline configuration; the only difference is list vs generator
    feeding, so ``parity`` isolates the cost of not knowing the stream
    length upfront (the acceptance bound is 0.05 on the Fig. 18 sweep
    point).
    """
    from repro.bench import BenchScale, PAPER_MASKS, make_batches

    scale = BenchScale.sweep(
        num_batches=num_batches,
        token_budget=int(token_budget),
        max_seqlen=int(token_budget),
        block_size=int(block_size),
    )
    if batches is None:
        batches = make_batches(
            "longdatacollections", scale, PAPER_MASKS[mask_name]()
        )[:num_batches]
    batches = list(batches) * max(cycles, 1)

    fixed = _measure_streaming_cell(
        scale, batches, kappa, workers, time_scale, mode="fixed"
    )
    streaming = _measure_streaming_cell(
        scale, batches, kappa, workers, time_scale, mode="streaming"
    )
    mid = len(batches) // 2 - 1
    # Replan cost comparison, one device-removal each, windows settled
    # before the event so all three cells re-dispatch identical work:
    # scratch = whole window cold (the pre-delta behavior), delta =
    # only affected jobs, warm-started, window = every job through the
    # same warm primitive (the correctness baseline delta must match).
    replan_scratch = _measure_streaming_cell(
        scale, batches, kappa, workers, time_scale, mode="replan",
        remove_machine_at=mid, replan_mode="scratch", use_cache=False,
    )
    delta_prints: List = []
    window_prints: List = []
    replan_delta = _measure_streaming_cell(
        scale, batches, kappa, workers, time_scale, mode="replan_delta",
        remove_machine_at=mid, replan_mode="delta",
        fingerprints=delta_prints, use_cache=False,
    )
    replan_window = _measure_streaming_cell(
        scale, batches, kappa, workers, time_scale, mode="replan_window",
        remove_machine_at=mid, replan_mode="window",
        fingerprints=window_prints, use_cache=False,
    )
    kv_stream = batches[:kv_batches]
    kv_full = _measure_kv_consumer_bytes(
        scale, kv_stream, kappa, workers, time_scale, partial=False
    )
    kv_partial = _measure_kv_consumer_bytes(
        scale, kv_stream, kappa, workers, time_scale, partial=True
    )
    kv_replan = _measure_kv_replan_cell(
        scale, kv_stream, kappa, workers, time_scale,
        event_at=max(len(kv_stream) // 2 - 1, 0),
    )

    parity = round(
        abs(
            fixed["steady_hidden_fraction"]
            - streaming["steady_hidden_fraction"]
        ),
        4,
    )
    wire_ratio = (
        round(
            kv_partial["consumer_wire_bytes"]
            / kv_full["consumer_wire_bytes"],
            4,
        )
        if kv_full["consumer_wire_bytes"]
        else None
    )
    replan_cost_ratio = (
        round(
            replan_delta["replan_plan_s"] / replan_scratch["replan_plan_s"],
            4,
        )
        if replan_scratch["replan_plan_s"] > 0
        else None
    )
    fingerprints_identical = bool(
        delta_prints and delta_prints == window_prints
    )
    report = {
        "benchmark": "overlap_pipeline_streaming",
        "config": {
            "token_budget": int(token_budget),
            "block_size": int(block_size),
            "mask": mask_name,
            "cluster": "2x4 (sweep)",
            "num_batches": num_batches,
            "cycles": cycles,
            "kappa": kappa,
            "workers": workers,
            "time_scale": time_scale,
        },
        "git_revision": _git_revision(),
        "rows": [
            fixed, streaming, replan_scratch, replan_delta, replan_window,
            kv_full, kv_partial, kv_replan,
        ],
        "steady_hidden_parity": parity,
        "replans": replan_scratch["replans"],
        "replan_cost_ratio": replan_cost_ratio,
        "replan_cost_ratio_max": DEFAULT_REPLAN_RATIO_CEILING,
        "delta_window_fingerprints_identical": fingerprints_identical,
        "kv_consumer_wire_ratio": wire_ratio,
        "kv_refetch_saved_bytes": kv_replan["refetch_saved_bytes"],
        "plan_fetch": streaming["plan_fetch"],
    }
    print(
        f"parity={parity:.4f} replans={replan_scratch['replans']} "
        f"replan cost ratio={replan_cost_ratio} "
        f"delta==window: {fingerprints_identical} "
        f"kv wire ratio={wire_ratio}"
    )
    return report


def _measure_transport_cell(scale, batches, workers: int,
                            transport: str) -> Dict:
    """Plan ``batches`` on the process backend via one transport.

    Plans are submitted all at once (the pipeline's dispatch pattern)
    and every result is consumed, so the backend's ``transport_stats``
    cover exactly these plans.  ``plan_s`` sums the workers' pure
    planning intervals; ``move_s`` is everything transport adds on top
    (columnar encode + ring write in the worker, decode in the parent).
    The pickle cell's transport work happens inside the pool's result
    pipe where it cannot be instrumented, so its ``move_s`` is measured
    equivalently parent-side: one ``pickle.dumps`` + ``loads`` round
    trip per plan — the serialization the pipe performs.
    """
    from repro.core import DCPPlanner
    from repro.pipeline import ProcessPlannerBackend, plan_fingerprint

    planner = DCPPlanner(scale.cluster, scale.attention, scale.dcp_config())
    backend = ProcessPlannerBackend(
        planner, max_workers=workers, transport=transport
    )
    try:
        tickets = [
            backend.submit(index, batch)
            for index, batch in enumerate(batches)
        ]
        plan_s = 0.0
        pickle_bytes = 0
        pickle_move_s = 0.0
        fingerprints = []
        for ticket in tickets:
            plan, start, end = ticket.result()
            plan_s += end - start
            fingerprints.append(plan_fingerprint(plan))
            stamp = time.perf_counter()
            blob = pickle.dumps(plan)
            pickle.loads(blob)
            pickle_move_s += time.perf_counter() - stamp
            pickle_bytes += len(blob)
        stats = dict(backend.transport_stats)
        job_payload_bytes = backend.last_job_payload_bytes
        planner_payload_bytes = backend.planner_payload_bytes
        effective = backend.transport
    finally:
        backend.close()

    if transport == "pickle":
        payload_bytes = pickle_bytes
        move_s = pickle_move_s
    else:
        payload_bytes = stats["payload_bytes"]
        move_s = stats["encode_s"] + stats["write_s"] + stats["decode_s"]
    row = {
        "transport": transport,
        "effective_transport": effective,
        "plans": stats["plans"],
        "shm_plans": stats["shm_plans"],
        "wire_plans": stats["wire_plans"],
        "pickle_plans": stats["pickle_plans"],
        "payload_bytes": payload_bytes,
        "pickle_bytes": pickle_bytes,
        "plan_s": round(plan_s, 4),
        "encode_s": round(stats["encode_s"], 4),
        "write_s": round(stats["write_s"], 4),
        "decode_s": round(stats["decode_s"], 4),
        "move_s": round(move_s, 4),
        "overhead_ratio": round(move_s / plan_s, 4) if plan_s else None,
        "job_payload_bytes": job_payload_bytes,
        "planner_payload_bytes": planner_payload_bytes,
        "fingerprints": fingerprints,
    }
    print(
        f"transport={transport:<7} plans={row['plans']} "
        f"payload={payload_bytes} plan_s={row['plan_s']:.2f} "
        f"move_s={row['move_s']:.4f} overhead={row['overhead_ratio']}"
    )
    return row


def run_transport_bench(
    token_budget: int = 32768,
    block_size: int = 512,
    mask_name: str = "causal",
    num_batches: int = 4,
    workers: int = 4,
    batches=None,
) -> Dict:
    """Pickle vs columnar-wire vs shared-memory plan transport.

    The same batch list is planned through the process backend three
    times, once per transport, and the plans are checked
    ``plan_fingerprint``-identical across all three — the transport may
    only change how bytes move, never what arrives.
    """
    from repro.bench import BenchScale, PAPER_MASKS, make_batches

    scale = BenchScale.sweep(
        num_batches=num_batches,
        token_budget=int(token_budget),
        max_seqlen=int(token_budget),
        block_size=int(block_size),
    )
    if batches is None:
        batches = make_batches(
            "longdatacollections", scale, PAPER_MASKS[mask_name]()
        )[:num_batches]
    batches = list(batches)

    rows = [
        _measure_transport_cell(scale, batches, workers, transport)
        for transport in ("pickle", "wire", "shm")
    ]
    prints = [row.pop("fingerprints") for row in rows]
    fingerprints_identical = all(p == prints[0] for p in prints[1:])
    shm_row = rows[-1]
    wire_row = rows[1]
    pickle_row = rows[0]
    wire_vs_pickle = (
        round(wire_row["payload_bytes"] / pickle_row["payload_bytes"], 4)
        if pickle_row["payload_bytes"]
        else None
    )
    report = {
        "benchmark": "plan_transport",
        "config": {
            "token_budget": int(token_budget),
            "block_size": int(block_size),
            "mask": mask_name,
            "cluster": "2x4 (sweep)",
            "num_batches": len(batches),
            "workers": workers,
        },
        "git_revision": _git_revision(),
        "rows": rows,
        "fingerprints_identical": fingerprints_identical,
        "wire_vs_pickle_bytes_ratio": wire_vs_pickle,
        "overhead_ratio": shm_row["overhead_ratio"],
        "overhead_ratio_max": DEFAULT_TRANSPORT_OVERHEAD_CEILING,
        "smoke_overhead_ratio_max": DEFAULT_TRANSPORT_SMOKE_CEILING,
    }
    print(
        f"shm overhead ratio={report['overhead_ratio']} "
        f"wire/pickle bytes={wire_vs_pickle} "
        f"fingerprints identical: {fingerprints_identical}"
    )
    return report


def run_transport_smoke() -> Dict:
    """Small, fast transport comparison for CI gating."""
    report = run_transport_bench(
        token_budget=2048,
        block_size=256,
        num_batches=4,
        workers=2,
        batches=_smoke_batches(4),
    )
    report["benchmark"] = "plan_transport_smoke"
    return report


def run_streaming_smoke(time_scale: float = 3.0) -> Dict:
    """Small, fast streaming comparison for CI gating."""
    report = run_streaming_bench(
        token_budget=2048,
        block_size=256,
        num_batches=4,
        cycles=2,
        kappa=2,
        workers=2,
        kv_batches=4,
        time_scale=time_scale,
        batches=_smoke_batches(4),
    )
    report["benchmark"] = "overlap_pipeline_streaming_smoke"
    return report


def _smoke_batches(num_batches: int = 4):
    """Distinct small batches (~2048 tokens, varied lengths)."""
    from repro.blocks import BatchSpec
    from repro.masks import make_mask

    mask = make_mask("causal")
    return [
        BatchSpec.build(
            [512 + 128 * i, 384, 256 + 64 * i, 896 - 192 * i], mask
        )
        for i in range(num_batches)
    ]


def run_smoke(time_scale: float = 3.0) -> Dict:
    """Small, fast cell used by CI to gate on the hidden fraction.

    Execution is scaled to ~2x planning throughput so a healthy
    pipeline hides essentially all steady-state planning; see
    :data:`DEFAULT_SMOKE_FLOOR`.
    """
    report = run_overlap_bench(
        token_budget=2048,
        block_size=256,
        num_batches=4,
        cycles=2,
        kappas=(2,),
        worker_counts=(2,),
        process_backend=False,
        time_scale=time_scale,
        batches=_smoke_batches(4),
    )
    report["benchmark"] = "overlap_pipeline_smoke"
    return report


def _smoke_floor() -> float:
    try:
        with open(OUTPUT_PATH) as handle:
            return float(json.load(handle)["smoke_floor"])
    except (OSError, KeyError, ValueError):
        return DEFAULT_SMOKE_FLOOR


def _replan_ratio_ceiling() -> float:
    try:
        with open(OUTPUT_PATH) as handle:
            tracked = json.load(handle)
        return float(tracked["streaming"]["replan_cost_ratio_max"])
    except (OSError, KeyError, ValueError, TypeError):
        return DEFAULT_REPLAN_RATIO_CEILING


def _transport_smoke_ceiling() -> float:
    try:
        with open(OUTPUT_PATH) as handle:
            tracked = json.load(handle)
        return float(tracked["transport"]["smoke_overhead_ratio_max"])
    except (OSError, KeyError, ValueError, TypeError):
        return DEFAULT_TRANSPORT_SMOKE_CEILING


def _obs_smoke_ceilings():
    """(disabled, enabled) smoke ratio ceilings from tracked BENCH_obs."""
    from repro.obs.bench import (
        DEFAULT_SMOKE_DISABLED_RATIO_MAX,
        DEFAULT_SMOKE_ENABLED_RATIO_MAX,
    )

    try:
        with open(OBS_OUTPUT_PATH) as handle:
            smoke = json.load(handle)["smoke"]
        return (
            float(smoke["disabled_ratio_max"]),
            float(smoke["enabled_ratio_max"]),
        )
    except (OSError, KeyError, ValueError, TypeError):
        return (
            DEFAULT_SMOKE_DISABLED_RATIO_MAX,
            DEFAULT_SMOKE_ENABLED_RATIO_MAX,
        )


def _run_obs(smoke: bool, output: Optional[str]) -> int:
    """The --obs mode: overhead + telemetry via :mod:`repro.obs.bench`.

    The smoke run gates on the ceilings recorded in the tracked
    ``BENCH_obs.json`` (falling back to the module defaults) and on
    required-metric presence; the full run rewrites the tracked report
    and the Fig. 18 sweep-point trace.
    """
    from repro.obs.bench import gate_failures, run_obs_bench

    if smoke:
        output = output or OBS_SMOKE_OUTPUT_PATH
        trace_path = OBS_SMOKE_TRACE_PATH
    else:
        output = output or OBS_OUTPUT_PATH
        trace_path = OBS_TRACE_PATH
    report = run_obs_bench(smoke=smoke, trace_path=trace_path)
    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    if not smoke:
        return 0
    disabled_max, enabled_max = _obs_smoke_ceilings()
    failures = gate_failures(report, disabled_max, enabled_max)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    print(
        f"ok: obs disabled ratio {report['disabled_ratio']:.4f} <= "
        f"{disabled_max:.2f}, enabled ratio {report['enabled_ratio']:.4f} "
        f"<= {enabled_max:.2f}, "
        f"{len(report['metrics_present'])}/"
        f"{len(report['required_metrics'])} required metrics present, "
        f"{report['trace_events']} trace events"
    )
    return 0


def _merge_section_into_tracked(section: str, report: Dict) -> None:
    """Attach a named section to the tracked BENCH_overlap.json."""
    try:
        with open(OUTPUT_PATH) as handle:
            tracked = json.load(handle)
    except (OSError, ValueError):
        tracked = {"benchmark": "overlap_pipeline"}
    tracked[section] = report
    with open(OUTPUT_PATH, "w") as handle:
        json.dump(tracked, handle, indent=2)
        handle.write("\n")
    print(f"merged {section} section into {OUTPUT_PATH}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI cell; exits 1 if steady hidden fraction is below "
        "the smoke_floor recorded in BENCH_overlap.json",
    )
    parser.add_argument(
        "--streaming",
        action="store_true",
        help="measure the online (generator-fed) pipeline against the "
        "fixed-stream cell, plus replan and KV wire-byte cells; the "
        "full run merges into BENCH_overlap.json under 'streaming'",
    )
    parser.add_argument(
        "--transport",
        action="store_true",
        help="measure plan transport (pickle vs columnar wire vs shared "
        "memory) on the process backend; the full run merges into "
        "BENCH_overlap.json under 'transport'",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help="run the observability benchmark (tracer/metrics overhead "
        "+ merged Perfetto trace) instead; the full run writes "
        "BENCH_obs.json and TRACE_obs.json",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON report (default: repo root; smoke "
        "runs default to a scratch file)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="execution time multiplier over the cost model "
        "(default: 1.0 full, 3.0 smoke)",
    )
    args = parser.parse_args(argv)

    if args.obs:
        return _run_obs(args.smoke, args.output)
    if args.transport and args.smoke:
        report = run_transport_smoke()
        output = args.output or TRANSPORT_SMOKE_OUTPUT_PATH
    elif args.transport:
        report = run_transport_bench()
        output = args.output or OUTPUT_PATH
    elif args.streaming and args.smoke:
        report = run_streaming_smoke(
            time_scale=3.0 if args.time_scale is None else args.time_scale
        )
        output = args.output or STREAMING_SMOKE_OUTPUT_PATH
    elif args.streaming:
        report = run_streaming_bench(
            time_scale=1.0 if args.time_scale is None else args.time_scale
        )
        output = args.output or OUTPUT_PATH
    elif args.smoke:
        report = run_smoke(
            time_scale=3.0 if args.time_scale is None else args.time_scale
        )
        output = args.output or SMOKE_OUTPUT_PATH
    else:
        report = run_overlap_bench(
            time_scale=1.0 if args.time_scale is None else args.time_scale
        )
        output = args.output or OUTPUT_PATH

    if args.streaming and not args.smoke and output == OUTPUT_PATH:
        _merge_section_into_tracked("streaming", report)
    elif args.transport and not args.smoke and output == OUTPUT_PATH:
        _merge_section_into_tracked("transport", report)
    else:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {output}")

    if args.smoke and args.transport:
        # Gate the zero-copy path: plans identical across transports,
        # the shm cell genuinely on shared memory, and its measured
        # (encode + move + decode) / plan-time ratio under the ceiling.
        failed = False
        if not report["fingerprints_identical"]:
            print(
                "FAIL: plans are not fingerprint-identical across "
                "transports"
            )
            failed = True
        shm_row = report["rows"][-1]
        if shm_row["shm_plans"] < 1:
            print(
                "FAIL: shm transport cell moved no plan through shared "
                f"memory (effective={shm_row['effective_transport']})"
            )
            failed = True
        ratio = report["overhead_ratio"]
        ceiling = _transport_smoke_ceiling()
        if ratio is None:
            print("FAIL: transport cells measured no planning time")
            failed = True
        elif ratio > ceiling:
            print(
                f"FAIL: shm transport overhead ratio {ratio:.3f} above "
                f"the smoke ceiling {ceiling:.3f}"
            )
            failed = True
        if failed:
            return 1
        print(
            f"ok: shm transport overhead ratio {ratio:.3f} <= "
            f"{ceiling:.3f}, wire/pickle bytes "
            f"{report['wire_vs_pickle_bytes_ratio']}, fingerprints "
            "identical across transports"
        )
        return 0
    if args.smoke and not args.streaming:
        floor = _smoke_floor()
        measured = report["rows"][0]["steady_hidden_fraction"]
        if measured < floor:
            print(
                f"FAIL: steady hidden fraction {measured:.3f} below the "
                f"floor {floor:.3f} recorded in BENCH_overlap.json"
            )
            return 1
        print(f"ok: steady hidden fraction {measured:.3f} >= floor {floor:.3f}")
    if args.smoke and args.streaming:
        # Gate the *streaming* cell on the fixed-stream floor: online
        # mode must hide planning as well as the fixed mode does.
        floor = _smoke_floor()
        fixed = report["rows"][0]["steady_hidden_fraction"]
        streaming = report["rows"][1]["steady_hidden_fraction"]
        failed = False
        if fixed < floor:
            print(
                f"FAIL: fixed-stream steady hidden fraction {fixed:.3f} "
                f"below the floor {floor:.3f}"
            )
            failed = True
        if streaming < floor:
            print(
                f"FAIL: streaming steady hidden fraction {streaming:.3f} "
                f"below the fixed-stream floor {floor:.3f}"
            )
            failed = True
        if report["replans"] < 1:
            print("FAIL: replan cell measured no re-plans")
            failed = True
        ratio = report["replan_cost_ratio"]
        ceiling = _replan_ratio_ceiling()
        if ratio is None:
            print("FAIL: replan cells measured no re-plan cost")
            failed = True
        elif ratio > ceiling:
            print(
                f"FAIL: delta replan cost ratio {ratio:.3f} above the "
                f"ceiling {ceiling:.3f} (delta re-planning regressed "
                f"toward whole-window cost)"
            )
            failed = True
        if not report["delta_window_fingerprints_identical"]:
            print(
                "FAIL: delta re-plan plans are not fingerprint-identical "
                "to the whole-window re-plan"
            )
            failed = True
        if failed:
            return 1
        print(
            f"ok: fixed {fixed:.3f} / streaming {streaming:.3f} >= floor "
            f"{floor:.3f}, parity {report['steady_hidden_parity']:.3f}, "
            f"replans {report['replans']}, "
            f"replan cost ratio {ratio:.3f} <= {ceiling:.3f} "
            f"(delta==window fingerprints), "
            f"kv wire ratio {report['kv_consumer_wire_ratio']}"
        )
    return 0


def test_overlap_pipeline_smoke():
    """Pytest entry point: the smoke cell must clear the floor."""
    report = run_smoke()
    assert report["rows"], "benchmark produced no rows"
    row = report["rows"][0]
    assert row["iterations"] == 8
    assert row["steady_hidden_fraction"] >= _smoke_floor()
    assert row["cache_hit_rate"] > 0.0


if __name__ == "__main__":
    raise SystemExit(main())
