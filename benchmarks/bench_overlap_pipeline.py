"""Overlap-pipeline benchmark: measured §6.1 planning overlap.

Drives :class:`repro.pipeline.OverlapPipeline` over the Fig. 18 sweep
configuration (32768 tokens, 512-token blocks, causal mask, 2x4
devices) and *measures* — with real planner workers racing real wall
time — the fraction of planning hidden behind execution for lookahead
``kappa`` in {1, 2, 4} and several worker counts, on both thread and
process backends.  Execution occupies the 8B-GPT cost-model iteration
time (:func:`repro.pipeline.cost_model_executor`), so the plan/exec
ratio is the paper's, not an artifact of this machine.

Each cell also replays the measured per-iteration plan/exec times
through the analytic model (:func:`simulate_planning_overlap`) so the
report shows measurement and model side by side.

Writes ``BENCH_overlap.json`` at the repo root.  ``--smoke`` runs a
small configuration and *gates*: it fails (exit 1) if the measured
steady-state hidden fraction falls below the ``smoke_floor`` recorded
in the tracked ``BENCH_overlap.json`` — the regression guard wired
into ``benchmarks/run_tier1.sh``.

Usage::

    PYTHONPATH=src python benchmarks/bench_overlap_pipeline.py           # full
    PYTHONPATH=src python benchmarks/bench_overlap_pipeline.py --smoke   # gate
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
from typing import Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_overlap.json")
SMOKE_OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_overlap.smoke.json")

#: Steady-state hidden fraction the smoke configuration must clear.
#: The smoke cell is provisioned so planning hides entirely in steady
#: state (execution ~2x planning throughput); 0.5 leaves headroom for
#: CI scheduling noise while still catching a broken pipeline (a
#: serialized pipeline measures ~0.0).
DEFAULT_SMOKE_FLOOR = 0.5

FULL_KAPPAS = (1, 2, 4)
FULL_WORKERS = (2, 4)


def _git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def _measure_cell(
    scale,
    batches,
    kappa: int,
    workers: int,
    backend: str,
    time_scale: float,
) -> Dict:
    """One (kappa, workers, backend) pipeline run, fresh planner+cache."""
    from repro.core import DCPPlanner, PlanCache, simulate_planning_overlap
    from repro.pipeline import (
        OverlapPipeline,
        PipelineRunner,
        cost_model_executor,
    )

    planner = DCPPlanner(scale.cluster, scale.attention, scale.dcp_config())
    cache = PlanCache(planner, capacity=64)
    pipeline = OverlapPipeline(
        batches,
        planner,
        lookahead=kappa,
        max_workers=workers,
        backend=backend,
        cache=cache,
    )
    runner = PipelineRunner(
        pipeline, execute=cost_model_executor(time_scale=time_scale)
    )
    report = runner.run()
    stats = report.stats

    # Replay the measured profile through the analytic model: does the
    # §6.1 simulation agree with what the real pipeline measured?
    plan_times = [r.plan_s for r in stats.records]
    exec_times = [r.exec_s for r in stats.records]
    predicted = simulate_planning_overlap(
        plan_times,
        exec_times,
        cores_per_machine=workers,
        lookahead=kappa,
    )

    row = {
        "kappa": kappa,
        "workers": workers,
        "backend": backend,
        "iterations": stats.iterations,
        "hidden_fraction": round(stats.hidden_fraction, 4),
        "steady_hidden_fraction": round(stats.steady_hidden_fraction, 4),
        "stall_count": stats.stall_count,
        "steady_stall_count": stats.steady_stall_count,
        "total_stall_s": round(stats.total_stall_s, 4),
        "mean_plan_s": round(
            stats.total_plan_s / max(stats.iterations, 1), 4
        ),
        "mean_exec_s": round(
            stats.total_exec_s / max(stats.iterations, 1), 4
        ),
        "queue_depth_mean": round(stats.queue_depth_mean, 2),
        "queue_depth_max": stats.queue_depth_max,
        "cache_hit_rate": round(
            stats.plan_cache["hit_rate"] if stats.plan_cache else 0.0, 4
        ),
        "wall_s": round(stats.wall_s, 3),
        "predicted_stall_fraction": round(predicted.stall_fraction, 4),
    }
    print(
        f"kappa={kappa} workers={workers} backend={backend:<7} "
        f"hidden={row['hidden_fraction']:.3f} "
        f"steady={row['steady_hidden_fraction']:.3f} "
        f"stalls={row['stall_count']} wall={row['wall_s']:.1f}s "
        f"cache={row['cache_hit_rate']:.2f}"
    )
    return row


def run_overlap_bench(
    token_budget: int = 32768,
    block_size: int = 512,
    mask_name: str = "causal",
    num_batches: int = 8,
    cycles: int = 2,
    kappas: Sequence[int] = FULL_KAPPAS,
    worker_counts: Sequence[int] = FULL_WORKERS,
    process_backend: bool = True,
    time_scale: float = 1.0,
    batches=None,
) -> Dict:
    """Measure the overlap grid on the Fig. 18 sweep configuration.

    ``cycles`` repeats the batch list so the plan cache sees recurring
    signatures (bucketed-batching reality): cycle 2+ plans are cache
    hits, which is part of what the pipeline is designed to exploit.
    ``batches`` overrides the dataset-driven batch list (the smoke
    configuration supplies its own: at tiny token budgets the paper
    datasets degenerate to identical batches, which would turn the
    whole run into one plan plus cache hits).
    """
    from repro.bench import BenchScale, PAPER_MASKS, make_batches

    scale = BenchScale.sweep(
        num_batches=num_batches,
        token_budget=int(token_budget),
        max_seqlen=int(token_budget),
        block_size=int(block_size),
    )
    if batches is None:
        batches = make_batches(
            "longdatacollections", scale, PAPER_MASKS[mask_name]()
        )[:num_batches]
    batches = list(batches) * max(cycles, 1)

    rows: List[Dict] = []
    for kappa in kappas:
        for workers in worker_counts:
            rows.append(
                _measure_cell(
                    scale, batches, kappa, workers, "thread", time_scale
                )
            )
    if process_backend:
        for workers in worker_counts:
            rows.append(
                _measure_cell(
                    scale, batches, 2, workers, "process", time_scale
                )
            )

    return {
        "benchmark": "overlap_pipeline",
        "config": {
            "token_budget": int(token_budget),
            "block_size": int(block_size),
            "mask": mask_name,
            "cluster": "2x4 (sweep)",
            "num_batches": num_batches,
            "cycles": cycles,
            "time_scale": time_scale,
        },
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke_floor": DEFAULT_SMOKE_FLOOR,
        "rows": rows,
    }


def _smoke_batches(num_batches: int = 4):
    """Distinct small batches (~2048 tokens, varied lengths)."""
    from repro.blocks import BatchSpec
    from repro.masks import make_mask

    mask = make_mask("causal")
    return [
        BatchSpec.build(
            [512 + 128 * i, 384, 256 + 64 * i, 896 - 192 * i], mask
        )
        for i in range(num_batches)
    ]


def run_smoke(time_scale: float = 3.0) -> Dict:
    """Small, fast cell used by CI to gate on the hidden fraction.

    Execution is scaled to ~2x planning throughput so a healthy
    pipeline hides essentially all steady-state planning; see
    :data:`DEFAULT_SMOKE_FLOOR`.
    """
    report = run_overlap_bench(
        token_budget=2048,
        block_size=256,
        num_batches=4,
        cycles=2,
        kappas=(2,),
        worker_counts=(2,),
        process_backend=False,
        time_scale=time_scale,
        batches=_smoke_batches(4),
    )
    report["benchmark"] = "overlap_pipeline_smoke"
    return report


def _smoke_floor() -> float:
    try:
        with open(OUTPUT_PATH) as handle:
            return float(json.load(handle)["smoke_floor"])
    except (OSError, KeyError, ValueError):
        return DEFAULT_SMOKE_FLOOR


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CI cell; exits 1 if steady hidden fraction is below "
        "the smoke_floor recorded in BENCH_overlap.json",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON report (default: repo root; smoke "
        "runs default to a scratch file)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="execution time multiplier over the cost model "
        "(default: 1.0 full, 3.0 smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_smoke(
            time_scale=3.0 if args.time_scale is None else args.time_scale
        )
        output = args.output or SMOKE_OUTPUT_PATH
    else:
        report = run_overlap_bench(
            time_scale=1.0 if args.time_scale is None else args.time_scale
        )
        output = args.output or OUTPUT_PATH

    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")

    if args.smoke:
        floor = _smoke_floor()
        measured = report["rows"][0]["steady_hidden_fraction"]
        if measured < floor:
            print(
                f"FAIL: steady hidden fraction {measured:.3f} below the "
                f"floor {floor:.3f} recorded in BENCH_overlap.json"
            )
            return 1
        print(f"ok: steady hidden fraction {measured:.3f} >= floor {floor:.3f}")
    return 0


def test_overlap_pipeline_smoke():
    """Pytest entry point: the smoke cell must clear the floor."""
    report = run_smoke()
    assert report["rows"], "benchmark produced no rows"
    row = report["rows"][0]
    assert row["iterations"] == 8
    assert row["steady_hidden_fraction"] >= _smoke_floor()
    assert row["cache_hit_rate"] > 0.0


if __name__ == "__main__":
    raise SystemExit(main())
