"""Fig. 13: attention micro-benchmark with the causal mask.

Five systems (RFA Ring, RFA ZigZag, LoongTrain, TE, DCP) on
131072-token LongDataCollections batches over 32 simulated A100s, at
sequence-length scales 0.5/1/2/4.  Paper claims: DCP fastest overall,
best at scale 0.5 (up to 2.45x vs next best), RFA worst.
"""

import os
from collections import defaultdict

from conftest import run_once

from repro.bench import BenchScale, fig13_micro_causal


def test_fig13_micro_causal(benchmark, results_dir):
    scale = BenchScale.micro(num_batches=2)
    table = run_once(benchmark, lambda: fig13_micro_causal(scale))
    table.save(os.path.join(results_dir, "fig13_micro_causal.md"))
    table.show()

    totals = defaultdict(dict)  # len_scale -> system -> fw+bw
    for row in table.rows:
        length_scale, system, fw, bw = row[0], row[1], row[2], row[3]
        totals[length_scale][system] = fw + bw

    for length_scale, systems in totals.items():
        best_baseline = min(
            time for name, time in systems.items() if name != "dcp"
        )
        # DCP never loses to every baseline, and wins clearly at 0.5.
        assert systems["dcp"] <= best_baseline * 1.15, length_scale
        if length_scale == 0.5:
            assert best_baseline / systems["dcp"] > 1.19, (
                "paper reports >= 1.19x speed-up under causal masks"
            )
    # RFA (no head parallelism) is the slowest family overall.
    scale_one = totals[1.0]
    assert scale_one["rfa_ring"] > scale_one["te"]
