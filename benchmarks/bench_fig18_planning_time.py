"""Fig. 18: planning time vs block size (real wall-clock of our planner).

Paper claims: planning time drops rapidly as block size grows (fewer
blocks) and is smaller under sparse masks.
"""

import os
from collections import defaultdict

from conftest import run_once

from repro.bench import BenchScale, fig18_planning_time


def test_fig18_planning_time(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=1)
    table = run_once(
        benchmark, lambda: fig18_planning_time("longalign", scale)
    )
    table.save(os.path.join(results_dir, "fig18_planning_time.md"))
    table.show()

    by_mask = defaultdict(dict)
    for block, mask, total, *_ in table.rows:
        by_mask[mask][block] = total

    for mask, by_block in by_mask.items():
        blocks = sorted(by_block)
        # Monotone-ish decrease: coarsest blocks plan much faster than
        # the finest.
        assert by_block[blocks[-1]] < by_block[blocks[0]], mask
    # Sparse masks have fewer computation blocks, hence faster planning.
    assert by_mask["lambda"][512] < by_mask["causal"][512]
