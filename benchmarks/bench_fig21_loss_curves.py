"""Fig. 21: training-loss curves, DCP vs the MLM baseline.

Paper claims (§7.4): DCP does not alter the attention algorithm, so
loss curves match up to small kernel-order deviations.  We train the
numpy GPT with dense attention (MLM) and with attention executed
through DCP plans on the simulated cluster, under all four masks.
"""

import os

from conftest import run_once

from repro.bench import fig21_loss_curves


def test_fig21_loss_curves(benchmark, results_dir):
    table, curves = run_once(benchmark, lambda: fig21_loss_curves(
        iterations=200))
    table.save(os.path.join(results_dir, "fig21_loss_curves.md"))
    table.show()

    for mask, mlm_final, dcp_final, deviation in table.rows:
        assert deviation < 1e-2, (
            f"{mask}: loss curves must match (max dev {deviation})"
        )
    for mask, series in curves.items():
        # Training must actually learn (loss decreases meaningfully).
        assert series["mlm"][-1] < series["mlm"][0] - 0.5, mask
