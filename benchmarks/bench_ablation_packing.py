"""Ablation: packing strategies vs placement dynamism (paper §8).

Hierarchical Balance Packing [48] and WLB-LLM [45] fight input
dynamism by *choosing which sequences share a batch*; DCP fights it by
*placing whatever batch arrives*.  This ablation crosses the two: four
packing strategies x {static TE baseline, DCP}, measuring mean
attention time per iteration over a fixed sequence pool.  The paper's
position — packing helps the static system but DCP extracts most of
the benefit regardless of packing — becomes measurable.
"""

import os

import numpy as np
from conftest import run_once

from repro.baselines import TransformerEnginePlanner
from repro.bench import BenchScale, PAPER_MASKS, Table
from repro.blocks import generate_blocks
from repro.core import DCPPlanner
from repro.data import PACKERS, batches_to_specs, sample_lengths
from repro.sim import simulate_plan


def test_ablation_packing_strategies(benchmark, results_dir):
    scale = BenchScale.sweep()
    num_batches = 3

    def run():
        lengths = sample_lengths("longdatacollections", 400, seed=0)
        table = Table(
            "Ablation: packing strategy x system (causal, mean over batches)",
            ["packing", "system", "fw_ms", "workload_imbal"],
        )
        systems = {
            "te": TransformerEnginePlanner(),
            "dcp": DCPPlanner(
                scale.cluster, scale.attention, scale.dcp_config()
            ),
        }
        results = {}
        for pack_name, packer in PACKERS.items():
            packed = packer(
                lengths,
                token_budget=scale.token_budget,
                max_seqlen=scale.max_seqlen,
            )
            specs = batches_to_specs(
                packed[:num_batches], PAPER_MASKS["causal"]()
            )
            work = np.array(
                [sum(float(n) ** 2 for n in batch) for batch in packed],
                dtype=np.float64,
            )
            imbalance = float(work.max() / work.mean() - 1.0)
            for system, planner in systems.items():
                times = []
                for batch in specs:
                    block_set = generate_blocks(
                        batch, scale.attention, scale.block_size
                    )
                    plan = planner.plan(block_set, scale.cluster)
                    times.append(simulate_plan(plan).iteration_time)
                mean_ms = 1e3 * float(np.mean(times))
                table.add(pack_name, system, mean_ms, imbalance)
                results[(pack_name, system)] = mean_ms
        return table, results

    table, results = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_packing.md"))
    table.show()

    # DCP beats the static baseline under every packing strategy —
    # packing cannot substitute for placement-side dynamism.
    for pack_name in PACKERS:
        assert results[(pack_name, "dcp")] < results[(pack_name, "te")]
    # DCP's spread across packing strategies is narrower than the
    # baseline's: placement dynamism absorbs packing decisions.
    dcp_times = np.array([results[(p, "dcp")] for p in PACKERS])
    te_times = np.array([results[(p, "te")] for p in PACKERS])
    assert (
        dcp_times.std() / dcp_times.mean()
        <= te_times.std() / te_times.mean() + 0.25
    )
