"""Ablation: division-scheduling strategy (paper §7.5's open problem).

The paper observes that under causal masks its scheduler can *lose*
computation/communication overlap ("we attribute this to limitations
in the scheduling algorithm and believe further research could improve
its performance").  The root cause this reproduction identifies:
Listing 3 packs every communication-free block into division 0, so
later divisions may hold lots of transfers with little compute to hide
them behind.  The ``balanced`` strategy spreads compute evenly across
divisions under the same communication budget; this ablation measures
whether that buys exposed-communication time back.
"""

import os

import numpy as np
from conftest import run_once

from repro.bench import BenchScale, PAPER_MASKS, Table, make_batches
from repro.blocks import generate_blocks
from repro.placement import PlacementConfig, place_blocks
from repro.scheduling import build_schedule, serialize_schedule
from repro.sim import simulate_plan


def test_ablation_scheduler_strategy(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=2)

    def run():
        table = Table(
            "Ablation: division scheduling strategy (T=4)",
            ["mask", "strategy", "fw_ms", "exposed_comm_ms", "overlap_ms"],
        )
        results = {}
        for mask_name in ("causal", "lambda"):
            batches = make_batches(
                "longdatacollections",
                scale,
                PAPER_MASKS[mask_name](),
                length_scale=4.0,
            )
            plans = []
            for batch in batches:
                block_set = generate_blocks(
                    batch, scale.attention, scale.block_size
                )
                placement = place_blocks(
                    block_set, scale.cluster,
                    PlacementConfig(seed=0, restarts=1),
                )
                plans.append((block_set, placement))
            for strategy in ("paper", "balanced"):
                times, exposed, overlap = [], [], []
                for block_set, placement in plans:
                    plan = serialize_schedule(
                        build_schedule(
                            block_set, placement, num_divisions=4,
                            strategy=strategy,
                        )
                    )
                    timing = simulate_plan(plan)
                    times.append(timing.iteration_time)
                    critical = timing.critical_device
                    exposed.append(critical.exposed_comm)
                    overlap.append(critical.overlap_time)
                row = (
                    1e3 * float(np.mean(times)),
                    1e3 * float(np.mean(exposed)),
                    1e3 * float(np.mean(overlap)),
                )
                table.add(mask_name, strategy, *row)
                results[(mask_name, strategy)] = row
        return table, results

    table, results = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_scheduler.md"))
    table.show()

    for mask_name in ("causal", "lambda"):
        paper_fw = results[(mask_name, "paper")][0]
        balanced_fw = results[(mask_name, "balanced")][0]
        # The balanced strategy must not regress; the interesting
        # question (answered by the table) is how much it helps where
        # the paper reported lost overlap.
        assert balanced_fw <= paper_fw * 1.10
