"""Fig. 17: inter-node communication volume vs block size.

Paper claims: DCP's volume is far below the MLM baseline and increases
slightly with block size (coarser blocks = less placement flexibility).
"""

import os
from collections import defaultdict

from conftest import run_once

from repro.bench import BenchScale, fig17_comm_vs_blocksize


def test_fig17_comm_vs_blocksize(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=2)
    table = run_once(
        benchmark, lambda: fig17_comm_vs_blocksize("longalign", scale)
    )
    table.save(os.path.join(results_dir, "fig17_comm_vs_blocksize.md"))
    table.show()

    by_mask = defaultdict(list)  # mask -> [(block, dcp, mlm)]
    for block, mask, dcp_mb, mlm_mb in table.rows:
        by_mask[mask].append((block, dcp_mb, mlm_mb))

    for mask, rows in by_mask.items():
        rows.sort()
        dcp = [r[1] for r in rows]
        mlm = [r[2] for r in rows]
        # DCP always well under the static baseline.
        assert all(d < m for d, m in zip(dcp, mlm)), mask
        # Volume does not decrease much as blocks get coarser (paper:
        # slightly increasing trend).
        assert dcp[-1] >= 0.7 * dcp[0], mask
