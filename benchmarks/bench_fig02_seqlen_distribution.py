"""Fig. 2: sequence-length distributions of the two datasets."""

import os

from conftest import run_once

from repro.bench import fig02_distribution


def test_fig02_distribution(benchmark, results_dir):
    table = run_once(benchmark, fig02_distribution)
    table.save(os.path.join(results_dir, "fig02_seqlen_distribution.md"))
    table.show()

    rows = {row[0]: row for row in table.rows}
    longalign = rows["longalign"]
    ldc = rows["longdatacollections"]
    mean_col = table.headers.index("mean")
    short_col = table.headers.index("frac<4096")
    # Fig. 2's qualitative content: LongAlign is longer on average;
    # LDC is dominated by short sequences; both are capped at 131072.
    assert longalign[mean_col] > ldc[mean_col]
    assert ldc[short_col] > longalign[short_col]
    assert rows["longalign"][table.headers.index("max")] <= 131072
