"""Multi-tenant plan-service benchmark.

Drives a :class:`repro.service.PlanService` with a Zipf-distributed
batch-signature stream issued by concurrent client threads on behalf
of >= 1000 synthetic tenants, and records — per client-count cell —
plan-fetch latency quantiles (p50/p99), cache hit rate, pre-warm hit
fraction, admission rejections, and planner-worker utilization.
Results land in ``BENCH_service.json`` at the repo root (the smoke
variant writes ``BENCH_service.smoke.json`` so tracked full-sweep
numbers are never clobbered).

The cell geometry is chosen to exercise every serving tier: the
signature universe is larger than the hot cache (mid-rank Zipf
signatures churn through the LRU), the sharded store holds every plan
ever made (a churned signature is decoded, not re-planned), and the
forecaster's epoch rolls pre-warm predicted-hot evicted signatures
back into the cache, where the next demand hit counts as a pre-warm
hit.

A fingerprint identity probe asserts plans served through the service
are byte-identical (:func:`repro.pipeline.plan_fingerprint`) to the
synchronous ``planner.plan_batch`` article.

Usage::

    PYTHONPATH=src python benchmarks/bench_plan_service.py          # full
    PYTHONPATH=src python benchmarks/bench_plan_service.py --smoke  # quick
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_service.json")

#: Synthetic tenant population (the acceptance bar is >= 1000 even in
#: the smoke cell).
NUM_TENANTS = 1200
#: Distinct batch signatures in the request stream.
NUM_SIGNATURES = 64
#: Zipf skew of signature popularity (a -> 1 flattens).
ZIPF_A = 1.1
#: Hot-cache capacity — deliberately < NUM_SIGNATURES so mid-rank
#: signatures churn and the store + pre-warm tiers do real work.
CACHE_CAPACITY = 32
WORKERS = 4
SHARDS = 4
EPOCH_REQUESTS = 200
PREWARM_TOP_K = 24

DEFAULT_CLIENTS = (4, 8, 16)
DEFAULT_REQUESTS_PER_CELL = 4000
SMOKE_CLIENTS = (8,)
SMOKE_REQUESTS_PER_CELL = 1600

#: Floors recorded into the tracked full-run file and enforced by
#: ``check_bench_floors.py`` against every smoke run.  Ceilings leave
#: generous headroom over local measurements for shared CI runners
#: while still catching order-of-magnitude regressions.
SMOKE_P99_FETCH_S_MAX = 2.5
SMOKE_CACHE_HIT_RATE_MIN = 0.6
SMOKE_PREWARM_HIT_FRACTION_MIN = 0.0005


def _git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def _make_planner():
    from repro import AttentionSpec, ClusterSpec, DCPConfig, DCPPlanner

    cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    return DCPPlanner(cluster, attention,
                      DCPConfig(block_size=16, restarts=1))


def _make_universe(rng: np.random.Generator) -> List:
    """NUM_SIGNATURES distinct small batches (distinct signatures)."""
    from repro import BatchSpec, make_mask

    mask = make_mask("causal")
    universe = []
    seen = set()
    while len(universe) < NUM_SIGNATURES:
        count = int(rng.integers(1, 4))
        seqlens = sorted(
            int(rng.integers(1, 7)) * 16 for _ in range(count)
        )
        key = tuple(seqlens)
        if key in seen:
            continue
        seen.add(key)
        universe.append(BatchSpec.build(seqlens, mask))
    return universe


def _zipf_ranks(rng: np.random.Generator, count: int) -> np.ndarray:
    """Zipf(ZIPF_A) ranks clipped into the signature universe."""
    weights = 1.0 / np.arange(1, NUM_SIGNATURES + 1) ** ZIPF_A
    weights /= weights.sum()
    return rng.choice(NUM_SIGNATURES, size=count, p=weights)


def _run_cell(clients: int, requests: int, seed: int) -> Dict:
    from repro.service import AdmissionController, PlanRejected, PlanService

    rng = np.random.default_rng(seed)
    universe = _make_universe(rng)
    ranks = _zipf_ranks(rng, requests)
    tenants = rng.integers(0, NUM_TENANTS, size=requests)

    service = PlanService(
        _make_planner(),
        workers=WORKERS,
        cache_capacity=CACHE_CAPACITY,
        shards=SHARDS,
        admission=AdmissionController(
            max_queued_per_tenant=8,
            max_inflight_per_tenant=4,
            max_queued_total=4 * WORKERS * clients,
        ),
        epoch_requests=EPOCH_REQUESTS,
        prewarm_top_k=PREWARM_TOP_K,
    )

    per_client = np.array_split(np.arange(requests), clients)
    latencies: List[List[float]] = [[] for _ in range(clients)]
    rejections = [0] * clients
    errors: List[BaseException] = []

    def client_loop(who: int) -> None:
        try:
            for index in per_client[who]:
                batch = universe[int(ranks[index])]
                tenant = f"tenant{int(tenants[index])}"
                start = time.perf_counter()
                while True:
                    try:
                        service.fetch_plan(tenant, batch, timeout=60.0)
                        break
                    except PlanRejected as exc:
                        # Honor the backoff hint, then retry: the
                        # recorded latency covers the whole request,
                        # shed attempts included.
                        rejections[who] += 1
                        time.sleep(exc.retry_after_s or 0.005)
                latencies[who].append(time.perf_counter() - start)
        except BaseException as exc:  # surfaced after the join
            errors.append(exc)

    threads = [
        threading.Thread(target=client_loop, args=(who,), daemon=True)
        for who in range(clients)
    ]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - wall_start
    if errors:
        raise errors[0]

    stats = service.stats()
    service.close()
    flat = np.array([value for chunk in latencies for value in chunk])
    utilization = stats["worker_busy_s"] / (stats["workers"] * wall_s)
    return {
        "clients": clients,
        "requests": int(flat.size),
        "tenants": NUM_TENANTS,
        "tenants_seen": int(np.unique(tenants).size),
        "signatures": NUM_SIGNATURES,
        "zipf_a": ZIPF_A,
        "wall_s": round(wall_s, 4),
        "p50_fetch_s": round(float(np.percentile(flat, 50)), 6),
        "p99_fetch_s": round(float(np.percentile(flat, 99)), 6),
        "cache_hit_rate": round(stats["cache_hit_rate"], 4),
        "store_hits": stats["store_hits"],
        "planned": stats["planned"],
        "prewarm_submitted": stats["prewarm_submitted"],
        "prewarm_hits": stats["prewarm_hits"],
        "prewarm_hit_fraction": round(stats["prewarm_hit_fraction"], 5),
        "rejected": int(sum(rejections)),
        "worker_utilization": round(utilization, 4),
        "forecast_epochs": stats["forecast_epoch"],
        "throughput_rps": round(flat.size / wall_s, 1),
    }


def _fingerprint_probe(seed: int = 7, samples: int = 5) -> bool:
    """Service-served plans must equal the synchronous article."""
    from repro.pipeline import plan_fingerprint
    from repro.service import PlanService

    rng = np.random.default_rng(seed)
    universe = _make_universe(rng)
    planner = _make_planner()
    reference = _make_planner()
    with PlanService(planner, workers=2, cache_capacity=CACHE_CAPACITY,
                     shards=2) as service:
        for batch in universe[:samples]:
            served = service.fetch_plan("probe", batch, timeout=60.0)
            if plan_fingerprint(served) != plan_fingerprint(
                reference.plan_batch(batch)
            ):
                return False
    return True


def run_service_bench(
    clients: Sequence[int] = DEFAULT_CLIENTS,
    requests_per_cell: int = DEFAULT_REQUESTS_PER_CELL,
    smoke: bool = False,
) -> Dict:
    rows = [
        _run_cell(count, requests_per_cell, seed=0xDC9 + index)
        for index, count in enumerate(clients)
    ]
    report: Dict = {
        "benchmark": "plan_service",
        "revision": _git_revision(),
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke_run": smoke,
        "config": {
            "tenants": NUM_TENANTS,
            "signatures": NUM_SIGNATURES,
            "zipf_a": ZIPF_A,
            "cache_capacity": CACHE_CAPACITY,
            "workers": WORKERS,
            "shards": SHARDS,
            "epoch_requests": EPOCH_REQUESTS,
            "prewarm_top_k": PREWARM_TOP_K,
            "requests_per_cell": requests_per_cell,
        },
        "rows": rows,
        "fingerprints_identical": _fingerprint_probe(),
    }
    if not smoke:
        # The tracked full-run file carries the CI floors the smoke
        # reruns are checked against (check_bench_floors.py).
        report["smoke"] = {
            "p99_fetch_s_max": SMOKE_P99_FETCH_S_MAX,
            "cache_hit_rate_min": SMOKE_CACHE_HIT_RATE_MIN,
            "prewarm_hit_fraction_min": SMOKE_PREWARM_HIT_FRACTION_MIN,
        }
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="single quick cell (CI variant; floors still apply via "
        "check_bench_floors.py)",
    )
    parser.add_argument(
        "--output", default=None,
        help="report destination (default: BENCH_service.json, or "
        "BENCH_service.smoke.json with --smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_service_bench(
            clients=SMOKE_CLIENTS,
            requests_per_cell=SMOKE_REQUESTS_PER_CELL,
            smoke=True,
        )
    else:
        report = run_service_bench()

    output = args.output or (
        os.path.join(REPO_ROOT, "BENCH_service.smoke.json")
        if args.smoke
        else OUTPUT_PATH
    )
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    for row in report["rows"]:
        print(
            f"clients={row['clients']:>3}  "
            f"p50={row['p50_fetch_s'] * 1e3:8.2f}ms  "
            f"p99={row['p99_fetch_s'] * 1e3:8.2f}ms  "
            f"hit={row['cache_hit_rate']:.3f}  "
            f"prewarm={row['prewarm_hit_fraction']:.4f}  "
            f"util={row['worker_utilization']:.3f}  "
            f"rps={row['throughput_rps']}"
        )
    print(f"fingerprints_identical={report['fingerprints_identical']}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
