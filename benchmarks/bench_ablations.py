"""Ablations of DCP's design choices (beyond the paper's figures).

1. Number of divisions T (paper fixes 4 empirically).
2. Partitioner warm starts on/off.
3. Hierarchical vs flat placement.
"""

import os

import numpy as np
from conftest import run_once

from repro.bench import BenchScale, Table, make_batches, PAPER_MASKS
from repro.blocks import generate_blocks
from repro.core import DCPConfig, DCPPlanner
from repro.placement import PlacementConfig, place_blocks
from repro.scheduling import build_schedule, serialize_schedule
from repro.sim import simulate_plan


def _batches(scale, length_scale=1.0):
    return make_batches(
        "longdatacollections", scale, PAPER_MASKS["causal"](), length_scale
    )


def test_ablation_num_divisions(benchmark, results_dir):
    """More divisions improve overlap up to a point (paper uses T=4).

    Run with 4x-scaled lengths so communication matters: with tiny
    batches every division only adds kernel-launch overhead and T=1
    trivially wins.
    """
    scale = BenchScale.sweep(num_batches=2)

    def run():
        table = Table(
            "Ablation: number of divisions T",
            ["T", "fw_ms", "exposed_comm_ms"],
        )
        batches = _batches(scale, length_scale=4.0)
        for num_divisions in (1, 2, 4, 8):
            times, exposed = [], []
            for batch in batches:
                block_set = generate_blocks(
                    batch, scale.attention, scale.block_size
                )
                placement = place_blocks(
                    block_set, scale.cluster,
                    PlacementConfig(seed=0, restarts=1),
                )
                plan = serialize_schedule(
                    build_schedule(block_set, placement, num_divisions)
                )
                timing = simulate_plan(plan)
                times.append(timing.iteration_time)
                exposed.append(timing.critical_device.exposed_comm)
            table.add(num_divisions, 1e3 * float(np.mean(times)),
                      1e3 * float(np.mean(exposed)))
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_divisions.md"))
    table.show()
    times = dict(zip(table.column("T"), table.column("fw_ms")))
    exposed = dict(zip(table.column("T"), table.column("exposed_comm_ms")))
    assert times[4] <= times[1] * 1.05, "T=4 should not lose to T=1"
    assert exposed[4] <= exposed[1], "overlap must hide communication"


def test_ablation_warm_starts(benchmark, results_dir):
    """Warm starts bound DCP's communication by the static heuristics."""
    scale = BenchScale.sweep(num_batches=2)

    def run():
        table = Table(
            "Ablation: partitioner warm starts",
            ["warm_starts", "comm_mb", "plan_s"],
        )
        batches = _batches(scale)
        for warm in (True, False):
            volumes, times = [], []
            planner = DCPPlanner(
                scale.cluster, scale.attention,
                DCPConfig(block_size=scale.block_size, restarts=1,
                          use_warm_starts=warm),
            )
            for batch in batches:
                planner.plan_batch(batch)
                volumes.append(
                    planner.last_placement.comm_report().total_bytes
                )
                times.append(planner.last_stats.total)
            table.add(str(warm), float(np.mean(volumes)) / 1e6,
                      float(np.mean(times)))
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_warm_starts.md"))
    table.show()
    volumes = dict(zip(table.column("warm_starts"), table.column("comm_mb")))
    assert volumes["True"] <= volumes["False"] * 1.2


def test_ablation_hierarchical_vs_flat(benchmark, results_dir):
    """Hierarchical placement prioritizes the slow inter-node links."""
    from repro.sim import ClusterSpec

    scale = BenchScale.sweep(num_batches=2)
    flat_cluster = ClusterSpec(
        num_machines=1,
        devices_per_machine=scale.cluster.num_devices,
        inter_bandwidth=scale.cluster.inter_bandwidth,
    )

    def run():
        table = Table(
            "Ablation: hierarchical vs flat placement",
            ["mode", "inter_mb", "total_mb"],
        )
        batches = _batches(scale)
        for mode in ("hierarchical", "flat"):
            inter, total = [], []
            for batch in batches:
                block_set = generate_blocks(
                    batch, scale.attention, scale.block_size
                )
                if mode == "hierarchical":
                    placement = place_blocks(
                        block_set, scale.cluster,
                        PlacementConfig(seed=0, restarts=1),
                    )
                    report = placement.comm_report()
                    inter.append(report.inter_machine_bytes)
                    total.append(report.total_bytes)
                else:
                    # Flat: one-level partition over all devices, then
                    # re-evaluated on the real 2-node topology.
                    placement = place_blocks(
                        block_set, flat_cluster,
                        PlacementConfig(seed=0, restarts=1),
                    )
                    from repro.placement import communication_report

                    report = communication_report(
                        block_set, placement.slice_device,
                        placement.comp_device,
                        scale.cluster.num_devices, scale.cluster,
                    )
                    inter.append(report.inter_machine_bytes)
                    total.append(report.total_bytes)
            table.add(mode, float(np.mean(inter)) / 1e6,
                      float(np.mean(total)) / 1e6)
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_hierarchical.md"))
    table.show()
    inter = dict(zip(table.column("mode"), table.column("inter_mb")))
    assert inter["hierarchical"] <= inter["flat"] * 1.1
