"""Fig. 14: attention micro-benchmark under the four attention masks.

TE (enhanced with mask support, as the paper does) vs DCP.  Paper
claims: DCP up to 3.77x on sparse masks, with larger gains on the
sparser lambda / causal-blockwise masks than on shared-question.
"""

import os
from collections import defaultdict

from conftest import run_once

from repro.bench import BenchScale, fig14_micro_masks


def test_fig14_micro_masks(benchmark, results_dir):
    scale = BenchScale.micro(num_batches=2)
    table = run_once(benchmark, lambda: fig14_micro_masks(scale))
    table.save(os.path.join(results_dir, "fig14_micro_masks.md"))
    table.show()

    speedups = defaultdict(list)  # mask -> [speedup per scale]
    for row in table.rows:
        _, mask, system, _, _, speedup = row
        if system == "dcp":
            speedups[mask].append(speedup)

    for mask, values in speedups.items():
        best = max(values)
        if mask == "causal":
            assert best > 1.0, "DCP should beat TE somewhere even on causal"
        else:
            assert best > 1.5, f"sparse mask {mask} should show clear wins"
    # Sparser masks benefit more than shared-question (paper §7.1).
    assert max(speedups["lambda"]) > max(speedups["shared_question"]) * 0.8
