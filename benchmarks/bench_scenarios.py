"""Scenario-matrix benchmark: every mask family x every streaming packer.

The paper's core claim is that planned context parallelism handles
*arbitrary* attention workloads (§2.4: the mask is determined by the
input data, not just the model).  This benchmark turns that claim into
a gated grid.  Each cell drives one scenario —

* **mask family**: ``causal``, ``multirange`` (LongNet-style dilated
  blocks from :mod:`repro.masks.multirange`), ``documents``
  (block-diagonal :class:`~repro.masks.PackedDocumentMask` built per
  sequence), ``shared_question`` (RLHF samples from
  :mod:`repro.data.rlhf`, each sequence carrying its own mask), and
  ``mixed_tenant`` (heterogeneous traffic: consecutive batches cycle
  through tenant mask families);
* **streaming packer**: ``sequential``, ``workload_balanced``,
  ``length_grouped`` — the bounded-reordering-buffer packers from
  :data:`repro.data.STREAM_PACKERS`;
* **stream type**: ``fixed`` (no cluster events; plans proven
  ``plan_fingerprint``-identical to synchronous planning) and
  ``events`` (a mid-stream device removal re-plans the prefetch window
  in ``delta`` mode; the cell must observe >= 1 re-plan);

— through :class:`repro.pipeline.StreamingOverlapPipeline` and records
hidden fraction, per-plan communication volume, and re-plan cost.

Writes ``BENCH_scenarios.json`` at the repo root (the full grid, 30
cells).  ``--smoke`` runs a reduced grid (>= 12 cells) against tiny
batches, writes a scratch report, and *gates*: per-cell steady hidden
fraction must clear the ``smoke_hidden_floor`` recorded in the tracked
``BENCH_scenarios.json``, fixed cells must be fingerprint-identical to
synchronous planning, event cells must re-plan, every cell must move
communication volume, and the grid must cover every mask family x
packer pair.  ``benchmarks/check_bench_floors.py:check_scenarios``
re-checks the same floors in CI.

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py           # full grid
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import platform
import subprocess
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_scenarios.json")
SMOKE_OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_scenarios.smoke.json")

MASK_FAMILIES = (
    "causal",
    "multirange",
    "documents",
    "shared_question",
    "mixed_tenant",
)
PACKER_NAMES = ("sequential", "workload_balanced", "length_grouped")

#: Per-cell steady-state hidden-fraction floor for the smoke grid.  The
#: smoke cells run execution at ~3x the cost model, so a healthy
#: pipeline hides most planning in steady state on every scenario; 0.3
#: (vs the 0.5 single-cell overlap floor) leaves room for the heavier
#: mask families (multirange planning is slower per batch) and CI
#: scheduling noise, while a serialized pipeline (~0.0) still fails.
DEFAULT_SMOKE_HIDDEN_FLOOR = 0.3

#: Reordering-buffer depth the matrix runs the streaming packers at.
MATRIX_BUFFER = 16


def _git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


# ---------------------------------------------------------------------------
# Scenario construction: mask families over a packed length stream.
# ---------------------------------------------------------------------------


def _document_mask(seqlen: int):
    """Deterministic per-sequence packed-documents mask (~4 docs)."""
    from repro.masks import PackedDocumentMask

    if seqlen < 8:
        return PackedDocumentMask(doc_lens=(seqlen,))
    quarter = seqlen // 4
    return PackedDocumentMask(
        doc_lens=(quarter, quarter, quarter, seqlen - 3 * quarter)
    )


def _rlhf_mask(seqlen: int):
    """Deterministic RLHF shared-question mask derived from the length.

    Builds a :class:`repro.data.RlhfSample` whose question takes ~20%
    of the sequence and whose answer count varies with the length, then
    uses the sample's own ``mask()`` — the paper's data-dependent
    ``mask_fn``.  Sequences too short to hold a question plus answers
    fall back to causal.
    """
    from repro.data import RlhfSample
    from repro.masks import CausalMask

    if seqlen < 16:
        return CausalMask()
    num_answers = 2 + (seqlen % 3)
    question = max(seqlen // 5, 1)
    rest = seqlen - question
    base = rest // num_answers
    answer_lens = tuple(
        base if i < num_answers - 1 else rest - base * (num_answers - 1)
        for i in range(num_answers)
    )
    return RlhfSample(question_len=question, answer_lens=answer_lens).mask()


def _family_mask(family: str, max_seqlen: int):
    """The mask (spec or ``seqlen -> spec`` callable) for one family."""
    from repro.masks import CausalMask, DilatedBlockMask

    if family == "causal":
        return CausalMask()
    if family == "multirange":
        return DilatedBlockMask(
            block=max(max_seqlen // 32, 8),
            stride=4,
            window=max(max_seqlen // 8, 32),
        )
    if family == "documents":
        return _document_mask
    if family == "shared_question":
        return _rlhf_mask
    raise ValueError(f"unknown mask family {family!r}")


def _tenant_cycle(max_seqlen: int) -> List:
    """Mask families the mixed-tenant stream cycles through per batch."""
    from repro.masks import CausalMask, LambdaMask

    return [
        CausalMask(),
        LambdaMask(
            sink=max(max_seqlen // 32, 4), window=max(max_seqlen // 8, 32)
        ),
        _document_mask,
        _rlhf_mask,
        _family_mask("multirange", max_seqlen),
    ]


def _scenario_lengths(scale, num_sequences: int = 600) -> List[int]:
    """The matrix's length stream: paper distribution scaled to budget."""
    from repro.data import sample_lengths, scale_lengths

    lengths = sample_lengths(
        "longdatacollections", num_sequences, seed=scale.seed
    )
    lengths = scale_lengths(
        lengths, scale.token_budget / 131072, cap=scale.max_seqlen
    )
    return [int(n) for n in lengths]


def scenario_specs(
    family: str, scale, packer_name: str, num_batches: int
) -> List:
    """Materialize one cell's batch stream (``num_batches`` specs).

    The packer consumes the scenario's length stream through its
    reordering buffer; each emitted batch is dressed with the family's
    mask (per-sequence for the data-dependent families, cycling per
    batch for ``mixed_tenant``).
    """
    from repro.data import STREAM_PACKERS, batches_to_specs

    packer = STREAM_PACKERS[packer_name](
        scale.token_budget, scale.max_seqlen, buffer=MATRIX_BUFFER
    )
    lengths = _scenario_lengths(scale)
    batches = itertools.islice(packer.stream(lengths), num_batches)
    if family == "mixed_tenant":
        cycle = _tenant_cycle(scale.max_seqlen)
        return [
            batches_to_specs([batch], cycle[index % len(cycle)])[0]
            for index, batch in enumerate(batches)
        ]
    mask = _family_mask(family, scale.max_seqlen)
    return [batches_to_specs([batch], mask)[0] for batch in batches]


# ---------------------------------------------------------------------------
# Cell measurement.
# ---------------------------------------------------------------------------


def _settle_window(pipeline, timeout: float = 30.0) -> None:
    """Wait for every prefetch-window job to finish planning, so the
    event cell's device removal re-dispatches a fully-planned window
    and the measured re-plan cost is deterministic."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(
            item.ticket is None or item.ticket.ready()
            for item in pipeline._pending
        ):
            return
        time.sleep(0.005)


def _measure_cell(
    scale,
    specs: List,
    family: str,
    packer_name: str,
    stream: str,
    kappa: int,
    workers: int,
    time_scale: float,
) -> Dict:
    """Run one (mask family, packer, stream type) cell.

    ``stream="fixed"``: no cluster events; the cell additionally plans
    the same specs synchronously and records whether the pipeline's
    plans are ``plan_fingerprint``-identical.  ``stream="events"``: a
    device removal fires after the mid-stream iteration (window settled
    first), the pipeline re-plans in ``delta`` mode, and the cell runs
    cache-less so the re-plan cost is actually measured.
    """
    from repro.core import DCPPlanner, PlanCache
    from repro.data import packing_stats
    from repro.pipeline import (
        PipelineRunner,
        StreamingOverlapPipeline,
        cost_model_executor,
        plan_fingerprint,
    )
    from repro.sim import ClusterEventSource

    planner = DCPPlanner(scale.cluster, scale.attention, scale.dcp_config())
    events = None
    cache = None
    sync_prints: Optional[List] = None
    if stream == "fixed":
        cache = PlanCache(planner, capacity=64)
        sync_planner = DCPPlanner(
            scale.cluster, scale.attention, scale.dcp_config()
        )
        sync_prints = [
            plan_fingerprint(sync_planner.plan_batch(spec)) for spec in specs
        ]
    else:
        events = ClusterEventSource(scale.cluster)
    pipeline = StreamingOverlapPipeline(
        (spec for spec in specs),
        planner,
        lookahead=kappa,
        max_workers=workers,
        backend="thread",
        cache=cache,
        events=events,
        replan_mode="delta",
    )

    remove_at = max(len(specs) // 2 - 1, 0)

    def fire(index: int, _info: dict) -> None:
        if events is not None and index == remove_at:
            _settle_window(pipeline)
            events.remove_machines(1)

    inner_execute = cost_model_executor(time_scale=time_scale)
    fingerprints: List = []
    comm_bytes: List[int] = []

    def execute(local_data, plan):
        fingerprints.append(plan_fingerprint(plan))
        comm_bytes.append(plan.total_comm_bytes())
        return inner_execute(local_data, plan)

    runner = PipelineRunner(
        pipeline,
        execute=execute,
        on_iteration=fire if events is not None else None,
    )
    stats = runner.run().stats

    balance = packing_stats(
        [[seq.seqlen for seq in spec.sequences] for spec in specs]
    )
    row = {
        "scenario": f"{family}/{packer_name}/{stream}",
        "mask_family": family,
        "packer": packer_name,
        "stream": stream,
        "buffer": MATRIX_BUFFER,
        "iterations": stats.iterations,
        "hidden_fraction": round(stats.hidden_fraction, 4),
        "steady_hidden_fraction": round(stats.steady_hidden_fraction, 4),
        "mean_plan_s": round(stats.total_plan_s / max(stats.iterations, 1), 4),
        "mean_exec_s": round(stats.total_exec_s / max(stats.iterations, 1), 4),
        "comm_bytes_mean": int(
            sum(comm_bytes) / max(len(comm_bytes), 1)
        ),
        "comm_bytes_total": int(sum(comm_bytes)),
        "replans": stats.replans,
        "partial_replans": stats.partial_replans,
        "replan_jobs_reused": stats.replan_jobs_reused,
        "replan_plan_s": round(stats.replan_plan_s, 4),
        "workload_imbalance": round(balance["workload_imbalance"], 4),
        "wall_s": round(stats.wall_s, 3),
    }
    if stream == "fixed":
        row["fingerprints_identical"] = bool(
            fingerprints and fingerprints == sync_prints
        )
    else:
        row["remove_machine_at"] = remove_at
        row["replan_mode"] = "delta"
    print(
        f"{row['scenario']:<42} hidden={row['hidden_fraction']:.3f} "
        f"steady={row['steady_hidden_fraction']:.3f} "
        f"comm={row['comm_bytes_mean']} replans={row['replans']} "
        f"imb={row['workload_imbalance']:.3f} wall={row['wall_s']:.1f}s"
    )
    return row


# ---------------------------------------------------------------------------
# Grids.
# ---------------------------------------------------------------------------


def run_matrix(
    token_budget: int = 8192,
    block_size: int = 256,
    num_batches: int = 8,
    kappa: int = 2,
    workers: int = 4,
    time_scale: float = 1.0,
    families: Sequence[str] = MASK_FAMILIES,
    packers: Sequence[str] = PACKER_NAMES,
    event_cells: Optional[Iterable] = None,
) -> Dict:
    """Measure the scenario grid.

    ``event_cells`` restricts which (family, packer) pairs also run the
    ``events`` stream type (``None``: all of them — the full 30-cell
    grid).
    """
    from repro.bench import BenchScale

    scale = BenchScale.sweep(
        num_batches=num_batches,
        token_budget=int(token_budget),
        max_seqlen=int(token_budget),
        block_size=int(block_size),
    )
    event_pairs = (
        {(f, p) for f, p in event_cells}
        if event_cells is not None
        else {(f, p) for f in families for p in packers}
    )

    rows: List[Dict] = []
    for family in families:
        for packer_name in packers:
            specs = scenario_specs(family, scale, packer_name, num_batches)
            rows.append(
                _measure_cell(
                    scale, specs, family, packer_name, "fixed",
                    kappa, workers, time_scale,
                )
            )
            if (family, packer_name) in event_pairs:
                rows.append(
                    _measure_cell(
                        scale, specs, family, packer_name, "events",
                        kappa, workers, time_scale,
                    )
                )

    return {
        "benchmark": "scenario_matrix",
        "config": {
            "token_budget": int(token_budget),
            "block_size": int(block_size),
            "cluster": "2x4 (sweep)",
            "num_batches": num_batches,
            "kappa": kappa,
            "workers": workers,
            "time_scale": time_scale,
            "buffer": MATRIX_BUFFER,
            "mask_families": list(families),
            "packers": list(packers),
        },
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke_hidden_floor": DEFAULT_SMOKE_HIDDEN_FLOOR,
        "min_cells": 12,
        "rows": rows,
    }


def run_smoke(time_scale: float = 3.0) -> Dict:
    """Reduced grid for CI: every family x packer fixed cell (15) plus
    one events cell per packer on the causal family (3) — 18 cells."""
    report = run_matrix(
        token_budget=2048,
        block_size=256,
        num_batches=5,
        kappa=2,
        workers=2,
        time_scale=time_scale,
        event_cells=[("causal", packer) for packer in PACKER_NAMES],
    )
    report["benchmark"] = "scenario_matrix_smoke"
    return report


# ---------------------------------------------------------------------------
# Gating.
# ---------------------------------------------------------------------------


def _tracked_floor(key: str, default):
    try:
        with open(OUTPUT_PATH) as handle:
            return json.load(handle)[key]
    except (OSError, KeyError, ValueError):
        return default


def gate_failures(report: Dict, hidden_floor: float,
                  min_cells: int) -> List[str]:
    """Floor violations of a scenario report (empty list = pass)."""
    failures: List[str] = []
    rows = report.get("rows", [])
    if len(rows) < min_cells:
        failures.append(
            f"matrix has {len(rows)} cells, fewer than the required "
            f"{min_cells}"
        )
    covered = {(r["mask_family"], r["packer"]) for r in rows}
    for family in report["config"]["mask_families"]:
        for packer_name in report["config"]["packers"]:
            if (family, packer_name) not in covered:
                failures.append(
                    f"cell {family}/{packer_name} missing from the matrix"
                )
    for row in rows:
        name = row["scenario"]
        if row["steady_hidden_fraction"] < hidden_floor:
            failures.append(
                f"{name}: steady hidden fraction "
                f"{row['steady_hidden_fraction']:.3f} below the floor "
                f"{hidden_floor:.3f}"
            )
        if row["comm_bytes_total"] <= 0:
            failures.append(f"{name}: no communication volume recorded")
        if row["stream"] == "fixed" and not row.get("fingerprints_identical"):
            failures.append(
                f"{name}: plans are not fingerprint-identical to "
                f"synchronous planning"
            )
        if row["stream"] == "events" and row["replans"] < 1:
            failures.append(f"{name}: event cell observed no re-plans")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced grid; exits 1 on any floor violation against the "
        "tracked BENCH_scenarios.json",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="where to write the JSON report (default: repo root; smoke "
        "runs default to a scratch file)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=None,
        help="execution time multiplier over the cost model "
        "(default: 1.0 full, 3.0 smoke)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_smoke(
            time_scale=3.0 if args.time_scale is None else args.time_scale
        )
        output = args.output or SMOKE_OUTPUT_PATH
    else:
        report = run_matrix(
            time_scale=1.0 if args.time_scale is None else args.time_scale
        )
        output = args.output or OUTPUT_PATH

    with open(output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")

    hidden_floor = float(
        _tracked_floor("smoke_hidden_floor", DEFAULT_SMOKE_HIDDEN_FLOOR)
    )
    min_cells = int(_tracked_floor("min_cells", 12))
    failures = gate_failures(report, hidden_floor, min_cells)
    for failure in failures:
        print(f"FAIL: {failure}")
    if failures:
        return 1
    fixed = [r for r in report["rows"] if r["stream"] == "fixed"]
    events = [r for r in report["rows"] if r["stream"] == "events"]
    print(
        f"ok: {len(report['rows'])} cells "
        f"({len(fixed)} fixed, {len(events)} events), "
        f"steady hidden min "
        f"{min(r['steady_hidden_fraction'] for r in report['rows']):.3f} "
        f">= floor {hidden_floor:.3f}, all fixed cells "
        f"fingerprint-identical, all event cells re-planned"
    )
    return 0


def test_scenarios_smoke():
    """Pytest entry point: a slice of the matrix must clear the floors.

    One data-dependent mask family and one event cell keep the tier-1
    runtime bounded; the full smoke grid runs in ``run_tier1.sh``/CI.
    """
    report = run_matrix(
        token_budget=2048,
        block_size=256,
        num_batches=4,
        kappa=2,
        workers=2,
        time_scale=3.0,
        families=("shared_question",),
        packers=("workload_balanced",),
    )
    failures = gate_failures(report, DEFAULT_SMOKE_HIDDEN_FLOOR, 2)
    assert not failures, failures


if __name__ == "__main__":
    raise SystemExit(main())
