"""Fig. 1: communication overhead of static context parallelism.

Reproduces the motivating figure: an 8B GPT trained with static CP
(Megatron/TE) spends a large, scale-growing fraction of iteration time
on CP communication.
"""

import os

from conftest import run_once

from repro.bench import BenchScale, fig01_comm_overhead


def test_fig01_comm_overhead(benchmark, results_dir):
    scale = BenchScale.e2e(num_batches=2)
    table = run_once(benchmark, lambda: fig01_comm_overhead(scale))
    table.save(os.path.join(results_dir, "fig01_comm_overhead.md"))
    table.show()

    comm_pct = table.column("comm_pct")
    # Paper: 27.7% -> 44.6% going from 4 to 8 nodes; 36.7% at 128K.
    assert all(pct > 5.0 for pct in comm_pct), "comm overhead should be material"
    assert comm_pct[1] > comm_pct[0], "overhead grows with cluster size"
