"""Fig. 16: end-to-end training iteration time on LongDataCollections.

Same setup as Fig. 15; the paper notes higher causal-mask speed-ups
here because LDC has more short sequences.
"""

import os
from collections import defaultdict

from conftest import run_once

from repro.bench import BenchScale, fig15_e2e


def test_fig16_e2e_ldc(benchmark, results_dir):
    scale = BenchScale.e2e(num_batches=2)
    table = run_once(benchmark, lambda: fig15_e2e("longdatacollections", scale))
    table.save(os.path.join(results_dir, "fig16_e2e_ldc.md"))
    table.show()

    speedup_by_mask = defaultdict(list)
    for max_seqlen, mask, mlm, dcp, speedup in table.rows:
        speedup_by_mask[mask].append(speedup)

    assert min(speedup_by_mask["causal"]) > 0.85
    for mask in ("lambda", "causal_blockwise", "shared_question"):
        assert max(speedup_by_mask[mask]) > 1.05, mask
