"""Ablation: analytic vs executed attention backward.

The evaluation figures price the backward pass analytically (2.5x tile
FLOPs, 2x bytes — paper §7 convention).  This repository also
implements the *real* distributed backward (same placement and
divisions, KV re-fetched, dQ/dKV partials shipped home).  This bench
validates the analytic model against the executed plan: simulated times
should agree within tens of percent, and the measured wire-traffic
ratio should straddle the 2x assumption.
"""

import os

import numpy as np
from conftest import run_once

from repro.bench import BenchScale, PAPER_MASKS, Table, make_batches
from repro.blocks import generate_blocks
from repro.placement import PlacementConfig, place_blocks
from repro.scheduling import (
    build_schedule,
    serialize_backward_schedule,
    serialize_schedule,
)
from repro.sim import simulate_plan


def test_ablation_backward_model(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=2)

    def run():
        table = Table(
            "Ablation: analytic vs executed attention backward",
            ["mask", "analytic_bw_ms", "executed_bw_ms", "bytes_ratio"],
        )
        for mask_name in ("causal", "lambda", "shared_question"):
            batches = make_batches(
                "longdatacollections", scale, PAPER_MASKS[mask_name](),
                length_scale=2.0,
            )
            analytic, executed, ratios = [], [], []
            for batch in batches:
                block_set = generate_blocks(
                    batch, scale.attention, scale.block_size
                )
                placement = place_blocks(
                    block_set, scale.cluster,
                    PlacementConfig(seed=0, restarts=1),
                )
                schedule = build_schedule(block_set, placement, 4)
                forward_plan = serialize_schedule(schedule)
                backward_plan = serialize_backward_schedule(schedule)
                analytic.append(
                    simulate_plan(forward_plan, backward=True).iteration_time
                )
                executed.append(
                    simulate_plan(backward_plan).iteration_time
                )
                fw_bytes = forward_plan.total_comm_bytes()
                bw_bytes = backward_plan.total_comm_bytes()
                if fw_bytes > 0:
                    ratios.append(bw_bytes / fw_bytes)
            table.add(
                mask_name,
                1e3 * float(np.mean(analytic)),
                1e3 * float(np.mean(executed)),
                float(np.mean(ratios)) if ratios else float("nan"),
            )
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_backward.md"))
    table.show()

    for mask, analytic_ms, executed_ms, bytes_ratio in table.rows:
        # The analytic model should be the right order of magnitude.
        assert 0.3 < analytic_ms / executed_ms < 3.0, mask
        if not np.isnan(bytes_ratio):
            # Real backward moves more than forward (KV in + grads out).
            assert bytes_ratio > 1.0, mask
