"""Fig. 20: communication volume vs computation-imbalance tolerance.

Paper claims: allowing more computation imbalance (larger eps) lets the
partitioner trade balance for less communication — volume decreases as
eps grows.
"""

import os
from collections import defaultdict

from conftest import run_once

from repro.bench import BenchScale, fig20_comm_vs_imbalance


def test_fig20_comm_vs_imbalance(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=2)
    table = run_once(benchmark, lambda: fig20_comm_vs_imbalance(scale))
    table.save(os.path.join(results_dir, "fig20_comm_vs_imbalance.md"))
    table.show()

    by_dataset = defaultdict(list)
    for dataset, imbalance, inter_mb in table.rows:
        by_dataset[dataset].append((imbalance, inter_mb))

    for dataset, points in by_dataset.items():
        points.sort()
        volumes = [v for _, v in points]
        # Loosest tolerance should not communicate more than the
        # tightest (the trade-off of the paper's Fig. 20).
        assert volumes[-1] <= volumes[0] * 1.05, dataset
