"""Ablation: planning-cost scaling (paper §8 "Scaling to larger clusters").

The paper argues DCP's planning overhead scales *sub-linearly* with
cluster size for a fixed input — partitioning depends mostly on the
number of blocks, not devices — and that batch-size growth is managed
by node grouping (DCP within groups, DP across).  Both claims are
measured here, plus the plan cache's hit behaviour on a repeating
length stream (§6.1 reuse).
"""

import os
import time

import numpy as np
from conftest import run_once

from repro.bench import BenchScale, PAPER_MASKS, Table, make_batches
from repro.blocks import BatchSpec
from repro.core import (
    DCPConfig,
    DCPPlanner,
    PlanCache,
    batch_signature,
    plan_with_groups,
)
from repro.sim import ClusterSpec


def test_ablation_planning_vs_cluster_size(benchmark, results_dir):
    """Fixed input, growing cluster: planning grows sub-linearly."""
    scale = BenchScale.sweep(num_batches=2)

    def run():
        batches = make_batches(
            "longdatacollections", scale, PAPER_MASKS["causal"]()
        )
        table = Table(
            "Ablation: planning time vs cluster size (fixed input)",
            ["devices", "plan_s", "per_device_ms"],
        )
        for machines in (1, 2, 4, 8):
            cluster = ClusterSpec(num_machines=machines, devices_per_machine=4)
            planner = DCPPlanner(
                cluster, scale.attention,
                DCPConfig(block_size=scale.block_size, restarts=1),
            )
            times = []
            for batch in batches:
                planner.plan_batch(batch)
                times.append(planner.last_stats.total)
            mean = float(np.mean(times))
            table.add(cluster.num_devices, mean,
                      1e3 * mean / cluster.num_devices)
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_scaling_cluster.md"))
    table.show()

    times = dict(zip(table.column("devices"), table.column("plan_s")))
    # Sub-linear: 8x the devices costs far less than 8x the planning.
    assert times[32] < 8 * times[4]


def test_ablation_grouping_scales_batch_size(benchmark, results_dir):
    """Bigger batches planned via groups: planning stays near-flat."""
    scale = BenchScale.sweep(num_batches=1)

    def run():
        base = make_batches(
            "longdatacollections", scale, PAPER_MASKS["causal"](),
        )[0]
        table = Table(
            "Ablation: node grouping vs batch growth",
            ["batch_x", "mode", "plan_s"],
        )
        cluster = ClusterSpec(num_machines=4, devices_per_machine=4)
        for factor in (1, 2, 4):
            batch = BatchSpec(base.sequences * factor)
            start = time.perf_counter()
            planner = DCPPlanner(
                cluster, scale.attention,
                DCPConfig(block_size=scale.block_size, restarts=1),
            )
            planner.plan_batch(batch)
            table.add(factor, "monolithic", time.perf_counter() - start)

            start = time.perf_counter()
            plan_with_groups(
                batch, cluster, num_groups=factor,
                attention=scale.attention,
                config=DCPConfig(block_size=scale.block_size, restarts=1),
            )
            # Groups plan independently; the paper runs them on separate
            # CPU cores, so charge the slowest group, not the sum.
            elapsed = (time.perf_counter() - start) / factor
            table.add(factor, "grouped (per-core)", elapsed)
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_scaling_batch.md"))
    table.show()

    grouped = [
        plan_s
        for batch_x, mode, plan_s in table.rows
        if mode == "grouped (per-core)"
    ]
    monolithic = [
        plan_s
        for batch_x, mode, plan_s in table.rows
        if mode == "monolithic"
    ]
    # At 4x batch size, grouped planning beats monolithic planning.
    assert grouped[-1] < monolithic[-1]


def test_ablation_plan_cache_hits(benchmark, results_dir):
    """Repeating length signatures are served from the plan cache."""
    scale = BenchScale.smoke()

    def run():
        batches = make_batches(
            "longdatacollections", scale, PAPER_MASKS["causal"](),
            num_sequences=200,
        )
        # A stream that revisits each batch several times (data loaders
        # commonly shuffle a bounded pool of packed shapes).
        stream = (batches * 6)[: len(batches) * 6]
        planner = DCPPlanner(
            scale.cluster, scale.attention,
            DCPConfig(block_size=scale.block_size, restarts=1),
        )
        cache = PlanCache(planner, capacity=32)
        hits = misses = 0
        cold_s = warm_s = 0.0
        for batch in stream:
            known = batch_signature(batch) in cache
            start = time.perf_counter()
            cache.plan_batch(batch)
            elapsed = time.perf_counter() - start
            if known:
                hits += 1
                warm_s += elapsed
            else:
                misses += 1
                cold_s += elapsed
        table = Table(
            "Ablation: plan cache on a repeating stream",
            ["metric", "value"],
        )
        table.add("hits", hits)
        table.add("misses", misses)
        table.add("hit_rate", hits / (hits + misses))
        table.add("mean_cold_ms", 1e3 * cold_s / max(misses, 1))
        table.add("mean_warm_ms", 1e3 * warm_s / max(hits, 1))
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_plan_cache.md"))
    table.show()

    values = dict(zip(table.column("metric"), table.column("value")))
    assert values["hit_rate"] > 0.8
    assert values["mean_warm_ms"] < values["mean_cold_ms"] / 10
