"""Ablation: hiding planning behind execution (paper §6.1 / Fig. 18).

Fig. 18's text claims planning of <10 s per batch "can perfectly
overlap model execution time (> 1 second per iteration) using our
pre-fetching and parallel planning design if planning is parallelized
with more than 10 CPU cores".  This ablation closes the loop with
*measured* quantities: per-batch planning times from the real planner,
per-iteration execution times from the 8B-GPT cost model, replayed
through the §6.1 look-ahead pipeline at varying core counts.

This ablation replays the *analytic* pipeline model; the real thing —
background planner workers measured against wall time — lives in
:mod:`repro.pipeline` and ``bench_overlap_pipeline.py`` (which writes
``BENCH_overlap.json``).
"""

import math
import os

import numpy as np
from conftest import run_once

from repro.bench import BenchScale, PAPER_MASKS, Table, make_batches
from repro.core import (
    DCPPlanner,
    min_cores_to_hide_planning,
    simulate_planning_overlap,
)
from repro.sim import e2e_iteration_time


def _measure(scale, num_batches=4):
    """Real (planning time, simulated execution time) per batch."""
    batches = make_batches(
        "longdatacollections",
        scale,
        PAPER_MASKS["causal"](),
    )[:num_batches]
    planner = DCPPlanner(scale.cluster, scale.attention, scale.dcp_config())
    plan_times, exec_times = [], []
    for batch in batches:
        plan = planner.plan_batch(batch)
        plan_times.append(planner.last_stats.total)
        exec_times.append(e2e_iteration_time(plan).iteration_time)
    return plan_times, exec_times


def test_ablation_planner_overlap(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=4, block_size=512)

    def run():
        plan_times, exec_times = _measure(scale)
        ratio = float(np.mean(plan_times)) / float(np.mean(exec_times))
        # Latency bound: the *slowest* plan must fit inside the
        # look-ahead window of the *fastest* iterations; throughput
        # bound (cores) is governed by the mean ratio.
        worst = float(np.max(plan_times)) / float(np.min(exec_times))
        lookahead = int(math.ceil(worst)) + 2
        warmup = 2 * (lookahead + 1)
        # Replicate the measured profile so steady state dominates.
        repeats = max(8, math.ceil(3 * warmup / len(plan_times)))
        plan_seq = list(plan_times) * repeats
        exec_seq = list(exec_times) * repeats

        table = Table(
            "Ablation: planning overlap vs CPU cores "
            f"(plan/exec ratio {ratio:.1f}x, lookahead {lookahead})",
            ["cores", "stall_fraction", "hidden"],
        )
        core_sweep = sorted(
            {1, 2, 4, max(1, int(ratio / 2)), int(ratio) + 1}
        )
        for cores in core_sweep:
            timeline = simulate_planning_overlap(
                plan_seq,
                exec_seq,
                cores_per_machine=cores,
                lookahead=lookahead,
            )
            table.add(
                cores,
                timeline.stall_fraction,
                str(timeline.planning_hidden(warmup=warmup)),
            )
        min_cores = min_cores_to_hide_planning(
            plan_seq, exec_seq, lookahead=lookahead, warmup=warmup
        )
        table.add("min to hide", float(min_cores or -1), "-")
        return table, ratio, min_cores

    (table, ratio, min_cores) = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_planner_overlap.md"))
    table.show()

    stalls = {
        cores: stall
        for cores, stall, _ in table.rows
        if isinstance(cores, int)
    }
    core_axis = sorted(stalls)
    # More cores monotonically reduce stalls; enough cores hide planning.
    for few, many in zip(core_axis, core_axis[1:]):
        assert stalls[many] <= stalls[few] + 1e-12
    assert min_cores is not None
    # The paper's rule of thumb: cores ~ plan/exec ratio suffice.
    assert min_cores <= int(math.ceil(ratio)) + 2
