"""Chaos benchmark: plan serving under injected failure.

Drives a replicated :class:`repro.service.PlanService` (R=2 on the
consistent-hash ring) with Zipf-distributed deadline-bearing client
load while a :mod:`repro.faults` schedule kills, slows and restarts
shards and planner workers in wall time.  Two scenarios:

* ``single_shard_kill`` — one of four shards is killed mid-run and
  later restarted (a restart wipes the shard: simulated data loss).
  R=2 must make this invisible: every request is served, every key
  stays readable from the surviving replica while the primary is
  down, read-repair + anti-entropy re-heal the wiped shard to full
  replication, and nothing is lost afterwards.
* ``double_fault`` — two of three shards die at once (keys whose
  whole owner set is gone stop being readable) *and* the planner
  workers are slowed past the client deadline.  Availability must
  still hold: fetches that cannot get an optimal plan inside the
  deadline are served the deterministic degraded fallback
  (``meta["degraded"] = True``) and upgraded in the background once
  the fault clears.

Measured per scenario: availability (served / issued), degraded-serve
fraction, recovery time (restart -> full replication on surviving
keys), mid-fault readability, fetch latency quantiles, and a
fingerprint-integrity count — every served plan must be
fingerprint-identical to the synchronous planner's article *or* be
explicitly degraded-tagged and fingerprint-identical to the
deterministic zigzag fallback.  Results land in ``BENCH_chaos.json``
(the smoke variant writes ``BENCH_chaos.smoke.json``); the tracked
full run records the CI floors ``check_bench_floors.py`` enforces
against every smoke rerun.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py          # full
    PYTHONPATH=src python benchmarks/bench_chaos.py --smoke  # quick
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_chaos.json")

#: Distinct batch signatures in the request stream — larger than the
#: hot cache so mid-rank signatures churn through the warm store and
#: shard faults are actually on the read path.
NUM_SIGNATURES = 32
CACHE_CAPACITY = 16
ZIPF_A = 1.1
NUM_TENANTS = 64
WORKERS = 2
CLIENTS = 4
REPLICATION = 2
#: Per-request budget: past this the service serves the degraded
#: fallback instead of failing (the availability contract under test).
DEADLINE_S = 0.5
HEDGE_AFTER_S = 0.01
ANTI_ENTROPY_S = 0.05
#: Injected planner-worker slowdown in the double-fault scenario —
#: deliberately past DEADLINE_S so cache misses on dead-owner keys
#: must take the degraded path.
WORKER_SLOW_S = 2.0

#: Wall-time scale of the fault schedules (smoke compresses it).
FULL_TIME_SCALE = 1.0
SMOKE_TIME_SCALE = 0.4

#: Floors recorded into the tracked full-run file and enforced by
#: ``check_bench_floors.py`` against every smoke rerun.
SMOKE_AVAILABILITY_MIN = 0.999
SMOKE_RECOVERY_S_MAX = 10.0
SMOKE_FINGERPRINT_VIOLATIONS_MAX = 0
SMOKE_DEGRADED_SERVED_MIN = 1  # double_fault must exercise the path

#: How long the post-run waits for background upgrades / healing may
#: take before the scenario is declared stuck.
DRAIN_TIMEOUT_S = 30.0


def _git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def _make_planner():
    from repro import AttentionSpec, ClusterSpec, DCPConfig, DCPPlanner

    cluster = ClusterSpec(num_machines=1, devices_per_machine=2)
    attention = AttentionSpec(num_q_heads=4, num_kv_groups=2, head_dim=16)
    return DCPPlanner(cluster, attention,
                      DCPConfig(block_size=16, restarts=1))


def _make_universe(rng: np.random.Generator) -> List:
    """NUM_SIGNATURES distinct small batches (distinct signatures)."""
    from repro import BatchSpec, make_mask

    mask = make_mask("causal")
    universe = []
    seen = set()
    while len(universe) < NUM_SIGNATURES:
        count = int(rng.integers(1, 4))
        seqlens = sorted(
            int(rng.integers(1, 7)) * 16 for _ in range(count)
        )
        key = tuple(seqlens)
        if key in seen:
            continue
        seen.add(key)
        universe.append(BatchSpec.build(seqlens, mask))
    return universe


def _references(universe: Sequence) -> Dict[str, List[str]]:
    """Per-signature fingerprints of both admissible served articles:
    the synchronous optimal plan and the deterministic zigzag
    fallback."""
    from repro.pipeline import plan_fingerprint
    from repro.service import degraded_plan

    optimal_planner = _make_planner()
    fallback_planner = _make_planner()
    return {
        "optimal": [
            plan_fingerprint(optimal_planner.plan_batch(batch))
            for batch in universe
        ],
        "degraded": [
            plan_fingerprint(degraded_plan(fallback_planner, batch))
            for batch in universe
        ],
    }


def _scenario_spec(name: str, scale: float) -> Dict:
    """Schedule + geometry for one chaos scenario (times in wall s)."""

    def t(x: float) -> float:
        return round(x * scale, 3)

    if name == "single_shard_kill":
        return {
            "name": name,
            "shards": 4,
            "schedule": (
                f"{t(1.0)} kill shard:shard1\n"
                f"{t(2.4)} restart shard:shard1\n"
            ),
            "probe_at": t(1.6),
            "recover_at": t(2.4),
            "run_s": t(4.5),
            "expected_restarts": 1,
        }
    if name == "double_fault":
        return {
            "name": name,
            "shards": 3,
            "schedule": (
                f"{t(0.8)} kill shard:shard0\n"
                f"{t(1.0)} kill shard:shard1\n"
                f"{t(1.0)} slow worker:0 {WORKER_SLOW_S}\n"
                f"{t(1.0)} slow worker:1 {WORKER_SLOW_S}\n"
                f"{t(2.6)} restart shard:shard0\n"
                f"{t(2.6)} restart shard:shard1\n"
                f"{t(2.6)} clear worker:0\n"
                f"{t(2.6)} clear worker:1\n"
            ),
            "probe_at": t(1.8),
            "recover_at": t(2.6),
            "run_s": t(4.5),
            "expected_restarts": 2,
        }
    raise ValueError(f"unknown scenario {name!r}")


def _run_scenario(spec: Dict, universe: Sequence, refs: Dict,
                  seed: int) -> Dict:
    from repro.faults import FaultInjector, ScheduleRunner, parse_schedule
    from repro.pipeline import plan_fingerprint
    from repro.service import PlanService, is_degraded

    injector = FaultInjector(seed=seed)
    schedule = parse_schedule(spec["schedule"])
    service = PlanService(
        _make_planner(),
        workers=WORKERS,
        cache_capacity=CACHE_CAPACITY,
        shards=spec["shards"],
        replication=REPLICATION,
        fault_injector=injector,
        hedge_after_s=HEDGE_AFTER_S,
        anti_entropy_interval_s=ANTI_ENTROPY_S,
    )

    # Warm every signature through the service once: the store now
    # holds every optimal plan, so faults hit real replicated state.
    for batch in universe:
        service.fetch_plan("warm", batch, timeout=60.0)
    keys_before = sorted(service.store.keys())

    weights = 1.0 / np.arange(1, NUM_SIGNATURES + 1) ** ZIPF_A
    weights /= weights.sum()

    stop = threading.Event()
    lock = threading.Lock()
    tallies = {
        "requests": 0,
        "errors": 0,
        "degraded": 0,
        "fingerprint_violations": 0,
    }
    latencies: List[List[float]] = [[] for _ in range(CLIENTS)]
    violations: List[str] = []

    def client_loop(who: int) -> None:
        rng = np.random.default_rng(seed * 1000 + who)
        while not stop.is_set():
            rank = int(rng.choice(NUM_SIGNATURES, p=weights))
            tenant = f"tenant{int(rng.integers(0, NUM_TENANTS))}"
            start = time.perf_counter()
            try:
                plan = service.fetch_plan(
                    tenant, universe[rank], deadline=DEADLINE_S
                )
            except Exception as exc:  # unavailability, by definition
                with lock:
                    tallies["requests"] += 1
                    tallies["errors"] += 1
                    if len(violations) < 8:
                        violations.append(f"error[{rank}]: {exc!r}")
                time.sleep(0.005)
                continue
            latencies[who].append(time.perf_counter() - start)
            degraded = is_degraded(plan)
            expected = refs["degraded" if degraded else "optimal"][rank]
            matches = plan_fingerprint(plan) == expected
            with lock:
                tallies["requests"] += 1
                if degraded:
                    tallies["degraded"] += 1
                if not matches:
                    tallies["fingerprint_violations"] += 1
                    if len(violations) < 8:
                        violations.append(
                            f"fingerprint[{rank}] degraded={degraded}"
                        )

    threads = [
        threading.Thread(target=client_loop, args=(who,), daemon=True)
        for who in range(CLIENTS)
    ]
    wall_start = time.perf_counter()
    t0 = time.monotonic()
    for thread in threads:
        thread.start()

    unreadable_during_fault = 0
    recovery_s: Optional[float] = None
    restarts_counter = service.metrics.counter("service.shard_restarts_seen")
    with ScheduleRunner(schedule, injector) as runner:
        # Mid-fault readability probe: every key written before the
        # fault, read back while the schedule's kills are in force.
        time.sleep(max(0.0, t0 + spec["probe_at"] - time.monotonic()))
        for key in keys_before:
            if service.store.try_get(key) is None:
                unreadable_during_fault += 1
        # Recovery clock starts at the schedule's restart instant and
        # stops when the wiped shards have been realized (restart
        # generations observed) and anti-entropy has restored full
        # replication for every surviving key.
        time.sleep(max(0.0, t0 + spec["recover_at"] - time.monotonic()))
        recover_start = time.monotonic()
        heal_deadline = recover_start + DRAIN_TIMEOUT_S
        while time.monotonic() < heal_deadline:
            if (restarts_counter.value >= spec["expected_restarts"]
                    and service.store.missing_replicas() == 0):
                recovery_s = time.monotonic() - recover_start
                break
            time.sleep(0.01)
        time.sleep(max(0.0, t0 + spec["run_s"] - time.monotonic()))
        runner.join(timeout=DRAIN_TIMEOUT_S)
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    wall_s = time.perf_counter() - wall_start

    # Every degraded serve owes a background upgrade: wait for the
    # ledger to drain so the scenario ends with optimal plans only.
    drain_deadline = time.monotonic() + DRAIN_TIMEOUT_S
    while (service.pending_upgrades() > 0
           and time.monotonic() < drain_deadline):
        time.sleep(0.02)
    upgrades_drained = service.pending_upgrades() == 0

    service.store.sync()
    keys_after = set(service.store.keys())
    store_keys_lost = len([k for k in keys_before if k not in keys_after])

    stats = service.stats()
    service.close()

    flat = np.array([v for chunk in latencies for v in chunk])
    requests = tallies["requests"]
    availability = (
        (requests - tallies["errors"]) / requests if requests else 0.0
    )
    return {
        "scenario": spec["name"],
        "shards": spec["shards"],
        "replication": REPLICATION,
        "schedule": spec["schedule"].strip().splitlines(),
        "requests": requests,
        "errors": tallies["errors"],
        "availability": round(availability, 6),
        "degraded_served": tallies["degraded"],
        "degraded_fraction": round(
            tallies["degraded"] / requests if requests else 0.0, 5
        ),
        "fingerprint_violations": tallies["fingerprint_violations"],
        "violation_samples": violations,
        "unreadable_during_fault": unreadable_during_fault,
        "probed_keys": len(keys_before),
        "recovery_s": (
            round(recovery_s, 4) if recovery_s is not None else None
        ),
        "store_keys_lost": store_keys_lost,
        "upgrades_drained": upgrades_drained,
        "pending_upgrades": stats["pending_upgrades"],
        "plan_upgrades": stats["plan_upgrades"],
        "hedged_fetches": stats["hedged_fetches"],
        "hedge_wins": stats["hedge_wins"],
        "read_repairs": stats["read_repairs"],
        "store_put_failures": stats["store_put_failures"],
        "worker_job_errors": stats["worker_job_errors"],
        "shard_restarts_seen": restarts_counter.value,
        "wall_s": round(wall_s, 4),
        "p50_fetch_s": (
            round(float(np.percentile(flat, 50)), 6) if flat.size else None
        ),
        "p99_fetch_s": (
            round(float(np.percentile(flat, 99)), 6) if flat.size else None
        ),
        "throughput_rps": round(requests / wall_s, 1) if wall_s else 0.0,
    }


def run_chaos_bench(smoke: bool = False) -> Dict:
    scale = SMOKE_TIME_SCALE if smoke else FULL_TIME_SCALE
    rng = np.random.default_rng(0xFA17)
    universe = _make_universe(rng)
    refs = _references(universe)
    rows = [
        _run_scenario(_scenario_spec(name, scale), universe, refs,
                      seed=0xFA17 + index)
        for index, name in enumerate(("single_shard_kill", "double_fault"))
    ]
    report: Dict = {
        "benchmark": "chaos",
        "revision": _git_revision(),
        "python": platform.python_version(),
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "smoke_run": smoke,
        "config": {
            "signatures": NUM_SIGNATURES,
            "cache_capacity": CACHE_CAPACITY,
            "zipf_a": ZIPF_A,
            "tenants": NUM_TENANTS,
            "workers": WORKERS,
            "clients": CLIENTS,
            "replication": REPLICATION,
            "deadline_s": DEADLINE_S,
            "hedge_after_s": HEDGE_AFTER_S,
            "anti_entropy_interval_s": ANTI_ENTROPY_S,
            "worker_slow_s": WORKER_SLOW_S,
            "time_scale": scale,
        },
        "rows": rows,
    }
    if not smoke:
        # The tracked full-run file carries the CI floors the smoke
        # reruns are checked against (check_bench_floors.py).
        report["smoke"] = {
            "availability_min": SMOKE_AVAILABILITY_MIN,
            "recovery_s_max": SMOKE_RECOVERY_S_MAX,
            "fingerprint_violations_max": SMOKE_FINGERPRINT_VIOLATIONS_MAX,
            "degraded_served_min": SMOKE_DEGRADED_SERVED_MIN,
        }
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="compressed fault schedules (CI variant; floors still "
        "apply via check_bench_floors.py)",
    )
    parser.add_argument(
        "--output", default=None,
        help="report destination (default: BENCH_chaos.json, or "
        "BENCH_chaos.smoke.json with --smoke)",
    )
    args = parser.parse_args(argv)

    report = run_chaos_bench(smoke=args.smoke)

    output = args.output or (
        os.path.join(REPO_ROOT, "BENCH_chaos.smoke.json")
        if args.smoke
        else OUTPUT_PATH
    )
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {output}")
    for row in report["rows"]:
        recovery = (
            f"{row['recovery_s']:.3f}s" if row["recovery_s"] is not None
            else "STUCK"
        )
        print(
            f"{row['scenario']:>18}  avail={row['availability']:.4f}  "
            f"degraded={row['degraded_fraction']:.4f}  "
            f"recovery={recovery}  "
            f"unreadable={row['unreadable_during_fault']}  "
            f"lost={row['store_keys_lost']}  "
            f"violations={row['fingerprint_violations']}  "
            f"rps={row['throughput_rps']}"
        )
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
