"""Extended baseline comparison: Ulysses and FlexSP-style planners (§8).

The paper positions DCP against two families of related work it does
not benchmark directly: all-to-all head parallelism (DeepSpeed Ulysses
[23]) and sequence-granular dynamic DP/CP (ByteScale [18] / FlexSP
[44]).  This ablation runs both through the shared executor/timing
stack next to DCP and static ring attention, under a causal and a
sparse mask, checking the paper's §8 argument: sequence-level dynamism
recovers much of DCP's causal-mask benefit, but only mask-aware
placement wins once attention is sparse.
"""

import os

from conftest import run_once

from repro.baselines import (
    FlexSPPlanner,
    RingAttentionPlanner,
    UlyssesPlanner,
)
from repro.bench import BenchScale, PAPER_MASKS, Table, attention_times, make_batches
from repro.blocks import AttentionSpec
from repro.core import DCPPlanner
from repro.sim import ClusterSpec

# Ulysses needs head groups divisible by the device count, so this
# ablation runs the *un-TP-sharded* operator (32 Q heads, 8 KV groups)
# on an 8-GPU node group.
SCALE = BenchScale(
    token_budget=32768,
    max_seqlen=32768,
    block_size=1024,
    num_batches=2,
    cluster=ClusterSpec(num_machines=2, devices_per_machine=4),
    attention=AttentionSpec(num_q_heads=32, num_kv_groups=8, head_dim=128),
)


def _planners():
    return {
        "rfa_zigzag": RingAttentionPlanner(zigzag=True),
        "ulysses": UlyssesPlanner(),
        "flexsp": FlexSPPlanner(),
        "dcp": DCPPlanner(
            SCALE.cluster, SCALE.attention, SCALE.dcp_config()
        ),
    }


def test_ablation_baselines_extra(benchmark, results_dir):
    def run():
        table = Table(
            "Ablation: Ulysses / FlexSP-style baselines vs DCP",
            ["mask", "system", "fw_ms", "bw_ms", "comm_mb", "inter_mb"],
        )
        for mask_name in ("causal", "lambda"):
            batches = make_batches(
                "longdatacollections", SCALE, PAPER_MASKS[mask_name]()
            )
            for name, planner in _planners().items():
                stats = attention_times(planner, batches, SCALE)
                table.add(
                    mask_name, name, stats["fw_ms"], stats["bw_ms"],
                    stats["comm_mb"], stats["inter_mb"],
                )
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_baselines_extra.md"))
    table.show()

    rows = {
        (mask, system): (fw, comm, inter)
        for mask, system, fw, _, comm, inter in table.rows
    }
    # DCP beats the static ring outright under the causal mask; the
    # FlexSP-style planner delivers its advertised benefit — much less
    # traffic over the slow links — though its looser compute balance
    # keeps it off DCP's pace.
    assert rows[("causal", "dcp")][0] < rows[("causal", "rfa_zigzag")][0]
    assert (
        rows[("causal", "flexsp")][2] < rows[("causal", "rfa_zigzag")][2]
    )
    # Mask-aware DCP is the fastest system on the sparse mask, and its
    # traffic over the slow inter-node links stays competitive with the
    # mask-agnostic FlexSP (DCP trades cheap NVSwitch bytes for time).
    assert rows[("lambda", "dcp")][0] <= rows[("lambda", "flexsp")][0]
    assert (
        rows[("lambda", "dcp")][2] <= rows[("lambda", "flexsp")][2] * 1.25
    )
    assert rows[("lambda", "dcp")][1] < rows[("lambda", "ulysses")][1]
    # Ulysses moves less data than the ring (single all-to-all pass).
    assert rows[("causal", "ulysses")][1] < rows[("causal", "rfa_zigzag")][1]
