"""Fig. 15: end-to-end training iteration time on LongAlign.

8B GPT cost model, 8 nodes with TP4 (=> 16 CP ranks), MLM (enhanced TE)
vs DCP across four max sequence lengths and four masks.  Paper claims:
0.94x-1.16x under causal, 1.00x-1.46x under sparse masks; higher
speed-ups at smaller max lengths.
"""

import os
from collections import defaultdict

from conftest import run_once

from repro.bench import BenchScale, fig15_e2e


def test_fig15_e2e_longalign(benchmark, results_dir):
    scale = BenchScale.e2e(num_batches=2)
    table = run_once(benchmark, lambda: fig15_e2e("longalign", scale))
    table.save(os.path.join(results_dir, "fig15_e2e_longalign.md"))
    table.show()

    speedup_by_mask = defaultdict(list)
    for max_seqlen, mask, mlm, dcp, speedup in table.rows:
        speedup_by_mask[mask].append(speedup)

    # Paper's bands: causal can dip slightly below 1.0 at large max
    # lengths; sparse masks never lose.
    assert min(speedup_by_mask["causal"]) > 0.85
    for mask in ("lambda", "causal_blockwise", "shared_question"):
        assert min(speedup_by_mask[mask]) > 0.95, mask
        assert max(speedup_by_mask[mask]) > 1.05, mask
