"""Fig. 22: decomposition of end-to-end iteration time.

Paper claims: for sparse masks DCP sharply reduces total communication
time (overlap + exposed) vs MLM; attention compute also shrinks.
"""

import os

from conftest import run_once

from repro.bench import BenchScale, fig22_decomposition


def test_fig22_decomposition(benchmark, results_dir):
    scale = BenchScale.e2e(num_batches=2)
    table = run_once(benchmark, lambda: fig22_decomposition(scale))
    table.save(os.path.join(results_dir, "fig22_decomposition.md"))
    table.show()

    rows = {(r[0], r[1]): r for r in table.rows}
    comm_col = table.headers.index("non_ovlp_comm_s")
    overlap_col = table.headers.index("overlap_s")
    for mask in ("lambda", "causal_blockwise", "shared_question"):
        dcp_comm = rows[(mask, "dcp")][comm_col] + rows[(mask, "dcp")][overlap_col]
        mlm_comm = rows[(mask, "mlm")][comm_col] + rows[(mask, "mlm")][overlap_col]
        assert dcp_comm < mlm_comm, (
            f"{mask}: DCP must reduce total communication time"
        )
