"""Shared fixtures for the figure benchmarks."""

import os

import pytest


@pytest.fixture(scope="session")
def results_dir():
    path = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(path, exist_ok=True)
    return path


def run_once(benchmark, fn):
    """Run a figure driver exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
