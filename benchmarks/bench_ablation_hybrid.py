"""Ablation: composing DCP with TP and PP (paper §6.2).

The paper prescribes the TP-CP-DP-PP rank order — TP on NVSwitch,
DCP over the CP/DP ranks, PP across distant nodes — without measuring
the composition.  This ablation sweeps topologies of a 4-node cluster
for the 8B GPT and checks the qualitative claims behind the
prescription:

* some tensor parallelism beats none (per-rank attention and linear
  work shrink faster than the NVSwitch all-reduces grow);
* pipeline stages introduce a bubble that more microbatches amortize;
* TP groups never straddle machines (validated by construction).
"""

import os

from conftest import run_once

from repro.bench import BenchScale, PAPER_MASKS, Table, make_batches
from repro.core import DCPConfig
from repro.parallel import HybridConfig, RankTopology, hybrid_iteration_time
from repro.sim import ClusterSpec
from repro.sim.modelcost import GPT_8B

CLUSTER = ClusterSpec(num_machines=4, devices_per_machine=8)

TOPOLOGIES = [
    RankTopology(tp=1, dcp=32, pp=1),
    RankTopology(tp=4, dcp=8, pp=1),
    RankTopology(tp=8, dcp=4, pp=1),
    RankTopology(tp=4, dcp=4, pp=2),
    RankTopology(tp=4, dcp=2, pp=4),
]


def test_ablation_hybrid_topologies(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=1)

    def run():
        batch = make_batches(
            "longdatacollections", scale, PAPER_MASKS["causal"]()
        )[0]
        table = Table(
            "Ablation: TP x DCP x PP topology (8B GPT, 4x8 GPUs)",
            ["topology", "iter_s", "bubble", "tp_comm_s", "grad_sync_s"],
        )
        for topology in TOPOLOGIES:
            config = HybridConfig(
                topology=topology,
                num_microbatches=max(2 * topology.pp, 2),
                dcp_config=DCPConfig(block_size=scale.block_size, restarts=1),
            )
            result = hybrid_iteration_time(
                batch, CLUSTER, config, model=GPT_8B
            )
            table.add(
                topology.describe(),
                result.iteration_time,
                result.pipeline.bubble_fraction,
                result.tp_comm_time,
                result.grad_sync_time,
            )
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_hybrid.md"))
    table.show()

    rows = {
        topo: (iter_s, bubble)
        for topo, iter_s, bubble, _, _ in table.rows
    }
    # TP=4 (the paper's end-to-end setting) beats pure context
    # parallelism on this model/cluster.
    assert rows["tp=4 dcp=8 pp=1"][0] < rows["tp=1 dcp=32 pp=1"][0]
    # Pipeline stages cost bubble; deeper pipelines cost more.
    assert rows["tp=4 dcp=4 pp=2"][1] > 0.0
    assert rows["tp=4 dcp=2 pp=4"][1] > rows["tp=4 dcp=4 pp=2"][1]
    # No-PP configurations have no bubble.
    assert rows["tp=4 dcp=8 pp=1"][1] == 0.0


def test_ablation_microbatches_amortize_bubble(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=1)

    def run():
        batch = make_batches(
            "longdatacollections", scale, PAPER_MASKS["causal"]()
        )[0]
        table = Table(
            "Ablation: microbatches vs pipeline bubble (tp=4, pp=2)",
            ["microbatches", "iter_s", "bubble"],
        )
        topology = RankTopology(tp=4, dcp=4, pp=2)
        for microbatches in (1, 2, 4, 8):
            config = HybridConfig(
                topology=topology,
                num_microbatches=microbatches,
                dcp_config=DCPConfig(block_size=scale.block_size, restarts=1),
            )
            result = hybrid_iteration_time(
                batch, CLUSTER, config, model=GPT_8B
            )
            table.add(
                microbatches,
                result.iteration_time,
                result.pipeline.bubble_fraction,
            )
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_microbatches.md"))
    table.show()

    bubbles = dict(zip(table.column("microbatches"), table.column("bubble")))
    assert bubbles[8] < bubbles[1]
