"""Fig. 19: communication volume vs mask sparsity.

Paper claims: DCP's communication grows roughly linearly with mask
sparsity (= FLOPs relative to causal), i.e. it exploits sparsity to
drop redundant communication.
"""

import os

import numpy as np
from conftest import run_once

from repro.bench import BenchScale, fig19_comm_vs_sparsity


def test_fig19_comm_vs_sparsity(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=2)
    table = run_once(
        benchmark, lambda: fig19_comm_vs_sparsity("longalign", scale)
    )
    table.save(os.path.join(results_dir, "fig19_comm_vs_sparsity.md"))
    table.show()

    sparsity = np.array(table.column("sparsity"), dtype=float)
    volume = np.array(table.column("inter_mb"), dtype=float)
    # Positive correlation between sparsity and communication volume.
    correlation = np.corrcoef(sparsity, volume)[0, 1]
    assert correlation > 0.6, f"expected near-linear growth, r={correlation:.2f}"
    # Dense (causal) communicates several times more than the sparsest
    # variants — the headline of Fig. 19.
    causal_volume = volume[table.column("variant").index("causal")]
    assert causal_volume >= 3.0 * volume.min()
