"""CI gate: fail if any smoke metric regressed past its recorded floor.

The tier-1 script (``benchmarks/run_tier1.sh``) runs the smoke
benchmarks, each of which already gates on its own headline metric.
This checker is the aggregate, CI-facing pass: it re-reads every smoke
output against the floors recorded in the *tracked* ``BENCH_*.json``
files, so a PR that silently weakens a bench's self-gate (or forgets to
run one) still fails the workflow.

Checked metrics:

* planner hot path — smoke ``total_s`` must stay under the budget
  recorded in ``BENCH_planner.json["smoke"]["total_s_max"]``;
* overlap pipeline — smoke steady-state hidden fraction must clear
  ``BENCH_overlap.json["smoke_floor"]``;
* streaming overlap — fixed and streaming smoke cells clear the same
  floor, the delta-vs-whole-window replan cost ratio stays under
  ``streaming.replan_cost_ratio_max``, delta and whole-window re-plans
  are fingerprint-identical, and the KV per-device partial fetch keeps
  its wire-byte ratio under ``streaming.kv_wire_ratio_max``;
* plan transport — plans are fingerprint-identical across the pickle /
  columnar-wire / shared-memory transports, the shm cell actually moved
  plans through shared memory, and its (encode + move + decode) /
  plan-time overhead stays under
  ``transport.smoke_overhead_ratio_max``.

Usage::

    python benchmarks/check_bench_floors.py            # after run_tier1.sh
    python benchmarks/check_bench_floors.py --strict   # missing file = fail
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Fallbacks when the tracked files predate a floor field.
DEFAULT_PLANNER_SMOKE_BUDGET_S = 1.0
DEFAULT_HIDDEN_FLOOR = 0.5
DEFAULT_REPLAN_RATIO_MAX = 0.8
DEFAULT_KV_WIRE_RATIO_MAX = 0.95
DEFAULT_TRANSPORT_SMOKE_RATIO_MAX = 0.15


def _load(path: str) -> Optional[dict]:
    try:
        with open(os.path.join(REPO_ROOT, path)) as handle:
            return json.load(handle)
    except OSError:
        return None
    except ValueError as exc:
        raise SystemExit(f"unreadable benchmark file {path}: {exc}")


class Gate:
    def __init__(self) -> None:
        self.failures: List[str] = []
        self.checks = 0

    def check(self, ok: bool, message: str) -> None:
        self.checks += 1
        status = "ok  " if ok else "FAIL"
        print(f"{status}  {message}")
        if not ok:
            self.failures.append(message)


def check_planner(gate: Gate, strict: bool) -> None:
    tracked = _load("BENCH_planner.json")
    smoke = _load("BENCH_planner.smoke.json")
    if smoke is None:
        gate.check(not strict, "planner smoke output missing")
        return
    budget = DEFAULT_PLANNER_SMOKE_BUDGET_S
    if tracked:
        budget = float(
            tracked.get("smoke", {}).get(
                "total_s_max", DEFAULT_PLANNER_SMOKE_BUDGET_S
            )
        )
    total = max(float(row["total_s"]) for row in smoke["rows"])
    gate.check(
        total <= budget,
        f"planner smoke total {total:.3f}s <= budget {budget:.3f}s",
    )


def check_overlap(gate: Gate, strict: bool) -> None:
    tracked = _load("BENCH_overlap.json") or {}
    floor = float(tracked.get("smoke_floor", DEFAULT_HIDDEN_FLOOR))
    smoke = _load("BENCH_overlap.smoke.json")
    if smoke is None:
        gate.check(not strict, "overlap smoke output missing")
    else:
        steady = float(smoke["rows"][0]["steady_hidden_fraction"])
        gate.check(
            steady >= floor,
            f"overlap smoke steady hidden {steady:.3f} >= floor {floor:.3f}",
        )

    streaming = _load("BENCH_overlap.streaming.smoke.json")
    if streaming is None:
        gate.check(not strict, "streaming smoke output missing")
        return
    tracked_streaming = tracked.get("streaming") or {}
    rows = {row["mode"]: row for row in streaming["rows"]}
    for mode in ("fixed", "streaming"):
        steady = float(rows[mode]["steady_hidden_fraction"])
        gate.check(
            steady >= floor,
            f"streaming smoke [{mode}] steady hidden {steady:.3f} >= "
            f"floor {floor:.3f}",
        )
    gate.check(
        int(streaming.get("replans", 0)) >= 1,
        f"streaming smoke measured {streaming.get('replans')} re-plans",
    )

    ratio = streaming.get("replan_cost_ratio")
    ratio_max = float(
        tracked_streaming.get(
            "replan_cost_ratio_max", DEFAULT_REPLAN_RATIO_MAX
        )
    )
    gate.check(
        ratio is not None and float(ratio) <= ratio_max,
        f"delta replan cost ratio {ratio} <= {ratio_max}",
    )
    gate.check(
        bool(streaming.get("delta_window_fingerprints_identical")),
        "delta re-plans fingerprint-identical to whole-window re-plans",
    )

    wire_ratio = streaming.get("kv_consumer_wire_ratio")
    wire_max = float(
        tracked_streaming.get(
            "kv_wire_ratio_max", DEFAULT_KV_WIRE_RATIO_MAX
        )
    )
    gate.check(
        wire_ratio is not None and float(wire_ratio) <= wire_max,
        f"KV partial-fetch wire ratio {wire_ratio} <= {wire_max}",
    )
    gate.check(
        int(streaming.get("kv_refetch_saved_bytes", 0)) > 0,
        "KV delta re-fetch saved wire bytes "
        f"({streaming.get('kv_refetch_saved_bytes')})",
    )


def check_transport(gate: Gate, strict: bool) -> None:
    tracked = _load("BENCH_overlap.json") or {}
    smoke = _load("BENCH_overlap.transport.smoke.json")
    if smoke is None:
        gate.check(not strict, "transport smoke output missing")
        return
    tracked_transport = tracked.get("transport") or {}

    gate.check(
        bool(smoke.get("fingerprints_identical")),
        "plans fingerprint-identical across transports",
    )
    rows = {row["transport"]: row for row in smoke["rows"]}
    shm_row = rows.get("shm", {})
    gate.check(
        int(shm_row.get("shm_plans", 0)) >= 1,
        f"shm transport cell moved {shm_row.get('shm_plans')} plans "
        "through shared memory",
    )
    ratio = smoke.get("overhead_ratio")
    ratio_max = float(
        tracked_transport.get(
            "smoke_overhead_ratio_max", DEFAULT_TRANSPORT_SMOKE_RATIO_MAX
        )
    )
    gate.check(
        ratio is not None and float(ratio) <= ratio_max,
        f"shm transport overhead ratio {ratio} <= {ratio_max}",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat a missing smoke output as a failure (CI runs the "
        "smokes first, so absence means a bench silently did not run)",
    )
    args = parser.parse_args(argv)

    gate = Gate()
    check_planner(gate, strict=args.strict)
    check_overlap(gate, strict=args.strict)
    check_transport(gate, strict=args.strict)

    if gate.failures:
        print(
            f"\n{len(gate.failures)}/{gate.checks} smoke floor checks "
            "FAILED:"
        )
        for failure in gate.failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall {gate.checks} smoke floor checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
