"""CI gate: fail if any smoke metric regressed past its recorded floor.

The tier-1 script (``benchmarks/run_tier1.sh``) runs the smoke
benchmarks, each of which already gates on its own headline metric.
This checker is the aggregate, CI-facing pass: it re-reads every smoke
output against the floors recorded in the *tracked* ``BENCH_*.json``
files, so a PR that silently weakens a bench's self-gate (or forgets to
run one) still fails the workflow.

Checked metrics:

* planner hot path — smoke ``total_s`` must stay under the budget
  recorded in ``BENCH_planner.json["smoke"]["total_s_max"]``;
* overlap pipeline — smoke steady-state hidden fraction must clear
  ``BENCH_overlap.json["smoke_floor"]``;
* streaming overlap — fixed and streaming smoke cells clear the same
  floor, the delta-vs-whole-window replan cost ratio stays under
  ``streaming.replan_cost_ratio_max``, delta and whole-window re-plans
  are fingerprint-identical, and the KV per-device partial fetch keeps
  its wire-byte ratio under ``streaming.kv_wire_ratio_max``;
* plan transport — plans are fingerprint-identical across the pickle /
  columnar-wire / shared-memory transports, the shm cell actually moved
  plans through shared memory, and its (encode + move + decode) /
  plan-time overhead stays under
  ``transport.smoke_overhead_ratio_max``;
* plan service — the smoke Zipf stream ran against >= 1000 synthetic
  tenants, plan-fetch p99 stays under
  ``BENCH_service.json["smoke"]["p99_fetch_s_max"]``, the cache hit
  rate clears ``smoke.cache_hit_rate_min``, the pre-warm hit fraction
  clears ``smoke.prewarm_hit_fraction_min`` (and is non-zero — the
  forecaster actually warmed something demand then hit), and plans
  served through the service are fingerprint-identical to the
  synchronous planner;
* chaos — under the injected fault schedules availability stays above
  ``BENCH_chaos.json["smoke"]["availability_min"]`` in every scenario,
  every served plan is fingerprint-identical to the synchronous
  article or explicitly degraded-tagged (zero violations), the
  single-shard-kill scenario loses nothing (all keys readable from a
  replica mid-fault, none missing after healing), post-restart
  re-replication completes under ``smoke.recovery_s_max``, the
  double-fault scenario actually exercised degraded serving, and all
  owed background upgrades drained;
* scenario matrix — the smoke grid covers every mask family x packer
  pair with at least ``BENCH_scenarios.json["min_cells"]`` cells; every
  cell's steady hidden fraction clears
  ``BENCH_scenarios.json["smoke_hidden_floor"]`` and records
  communication volume; fixed-stream cells are fingerprint-identical
  to synchronous planning and event cells observed at least one
  re-plan;
* observability — the *tracked* ``BENCH_obs.json`` overhead ratios hold
  the acceptance ceilings (disabled ≤ 1.01, enabled ≤ 1.05 vs the
  uninstrumented smoke workload), the smoke rerun stays under the
  looser CI ceilings recorded in the tracked file, every required
  metric (planner stage latencies, plan-fetch split, cache/KV/transport
  counters) is present in the smoke telemetry snapshot, and the merged
  smoke trace is a structurally valid Chrome trace carrying planner,
  pipeline, transport, and simulated-execution lanes.

Usage::

    python benchmarks/check_bench_floors.py            # after run_tier1.sh
    python benchmarks/check_bench_floors.py --strict   # missing file = fail
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Fallbacks when the tracked files predate a floor field.
DEFAULT_PLANNER_SMOKE_BUDGET_S = 1.0
DEFAULT_HIDDEN_FLOOR = 0.5
DEFAULT_REPLAN_RATIO_MAX = 0.8
DEFAULT_KV_WIRE_RATIO_MAX = 0.95
DEFAULT_TRANSPORT_SMOKE_RATIO_MAX = 0.15
DEFAULT_SERVICE_P99_MAX_S = 2.5
DEFAULT_SERVICE_HIT_RATE_MIN = 0.6
DEFAULT_SERVICE_PREWARM_MIN = 0.0005
DEFAULT_CHAOS_AVAILABILITY_MIN = 0.999
DEFAULT_CHAOS_RECOVERY_S_MAX = 10.0
DEFAULT_CHAOS_VIOLATIONS_MAX = 0
DEFAULT_CHAOS_DEGRADED_MIN = 1
DEFAULT_SCENARIO_HIDDEN_FLOOR = 0.3
DEFAULT_SCENARIO_MIN_CELLS = 12
DEFAULT_OBS_DISABLED_RATIO_MAX = 1.01
DEFAULT_OBS_ENABLED_RATIO_MAX = 1.05
DEFAULT_OBS_SMOKE_DISABLED_RATIO_MAX = 1.05
DEFAULT_OBS_SMOKE_ENABLED_RATIO_MAX = 1.25

#: Metrics the obs telemetry workload must populate (mirrors
#: ``repro.obs.bench.REQUIRED_METRICS``; kept literal here so this
#: checker stays import-free and a PR cannot weaken the gate by
#: editing one list).
OBS_REQUIRED_METRICS = (
    "planner.plan_s",
    "planner.placement_s",
    "pipeline.plan_fetch_hit_s",
    "pipeline.plan_fetch_dispatch_s",
    "pipeline.iterations",
    "cache.hits",
    "cache.misses",
    "kv.put_s",
    "kv.get_s",
    "transport.plans",
)

#: Chrome-trace categories the merged smoke trace must carry — one
#: lane per instrumented layer plus the simulator's execution lane.
OBS_REQUIRED_TRACE_CATS = ("planner", "pipeline", "transport", "compute")


def _load(path: str) -> Optional[dict]:
    try:
        with open(os.path.join(REPO_ROOT, path)) as handle:
            return json.load(handle)
    except OSError:
        return None
    except ValueError as exc:
        raise SystemExit(f"unreadable benchmark file {path}: {exc}")


class Gate:
    def __init__(self) -> None:
        self.failures: List[str] = []
        self.checks = 0

    def check(self, ok: bool, message: str) -> None:
        self.checks += 1
        status = "ok  " if ok else "FAIL"
        print(f"{status}  {message}")
        if not ok:
            self.failures.append(message)


def check_planner(gate: Gate, strict: bool) -> None:
    tracked = _load("BENCH_planner.json")
    smoke = _load("BENCH_planner.smoke.json")
    if smoke is None:
        gate.check(not strict, "planner smoke output missing")
        return
    budget = DEFAULT_PLANNER_SMOKE_BUDGET_S
    if tracked:
        budget = float(
            tracked.get("smoke", {}).get(
                "total_s_max", DEFAULT_PLANNER_SMOKE_BUDGET_S
            )
        )
    total = max(float(row["total_s"]) for row in smoke["rows"])
    gate.check(
        total <= budget,
        f"planner smoke total {total:.3f}s <= budget {budget:.3f}s",
    )


def check_overlap(gate: Gate, strict: bool) -> None:
    tracked = _load("BENCH_overlap.json") or {}
    floor = float(tracked.get("smoke_floor", DEFAULT_HIDDEN_FLOOR))
    smoke = _load("BENCH_overlap.smoke.json")
    if smoke is None:
        gate.check(not strict, "overlap smoke output missing")
    else:
        steady = float(smoke["rows"][0]["steady_hidden_fraction"])
        gate.check(
            steady >= floor,
            f"overlap smoke steady hidden {steady:.3f} >= floor {floor:.3f}",
        )

    streaming = _load("BENCH_overlap.streaming.smoke.json")
    if streaming is None:
        gate.check(not strict, "streaming smoke output missing")
        return
    tracked_streaming = tracked.get("streaming") or {}
    rows = {row["mode"]: row for row in streaming["rows"]}
    for mode in ("fixed", "streaming"):
        steady = float(rows[mode]["steady_hidden_fraction"])
        gate.check(
            steady >= floor,
            f"streaming smoke [{mode}] steady hidden {steady:.3f} >= "
            f"floor {floor:.3f}",
        )
    gate.check(
        int(streaming.get("replans", 0)) >= 1,
        f"streaming smoke measured {streaming.get('replans')} re-plans",
    )

    ratio = streaming.get("replan_cost_ratio")
    ratio_max = float(
        tracked_streaming.get(
            "replan_cost_ratio_max", DEFAULT_REPLAN_RATIO_MAX
        )
    )
    gate.check(
        ratio is not None and float(ratio) <= ratio_max,
        f"delta replan cost ratio {ratio} <= {ratio_max}",
    )
    gate.check(
        bool(streaming.get("delta_window_fingerprints_identical")),
        "delta re-plans fingerprint-identical to whole-window re-plans",
    )

    wire_ratio = streaming.get("kv_consumer_wire_ratio")
    wire_max = float(
        tracked_streaming.get(
            "kv_wire_ratio_max", DEFAULT_KV_WIRE_RATIO_MAX
        )
    )
    gate.check(
        wire_ratio is not None and float(wire_ratio) <= wire_max,
        f"KV partial-fetch wire ratio {wire_ratio} <= {wire_max}",
    )
    gate.check(
        int(streaming.get("kv_refetch_saved_bytes", 0)) > 0,
        "KV delta re-fetch saved wire bytes "
        f"({streaming.get('kv_refetch_saved_bytes')})",
    )


def check_transport(gate: Gate, strict: bool) -> None:
    tracked = _load("BENCH_overlap.json") or {}
    smoke = _load("BENCH_overlap.transport.smoke.json")
    if smoke is None:
        gate.check(not strict, "transport smoke output missing")
        return
    tracked_transport = tracked.get("transport") or {}

    gate.check(
        bool(smoke.get("fingerprints_identical")),
        "plans fingerprint-identical across transports",
    )
    rows = {row["transport"]: row for row in smoke["rows"]}
    shm_row = rows.get("shm", {})
    gate.check(
        int(shm_row.get("shm_plans", 0)) >= 1,
        f"shm transport cell moved {shm_row.get('shm_plans')} plans "
        "through shared memory",
    )
    ratio = smoke.get("overhead_ratio")
    ratio_max = float(
        tracked_transport.get(
            "smoke_overhead_ratio_max", DEFAULT_TRANSPORT_SMOKE_RATIO_MAX
        )
    )
    gate.check(
        ratio is not None and float(ratio) <= ratio_max,
        f"shm transport overhead ratio {ratio} <= {ratio_max}",
    )


def check_service(gate: Gate, strict: bool) -> None:
    tracked = _load("BENCH_service.json") or {}
    floors = tracked.get("smoke") or {}
    smoke = _load("BENCH_service.smoke.json")
    if smoke is None:
        gate.check(not strict, "plan-service smoke output missing")
        return

    p99_max = float(floors.get("p99_fetch_s_max", DEFAULT_SERVICE_P99_MAX_S))
    hit_min = float(
        floors.get("cache_hit_rate_min", DEFAULT_SERVICE_HIT_RATE_MIN)
    )
    prewarm_min = float(
        floors.get("prewarm_hit_fraction_min", DEFAULT_SERVICE_PREWARM_MIN)
    )
    rows = smoke.get("rows") or []
    gate.check(bool(rows), "plan-service smoke recorded at least one cell")
    for row in rows:
        clients = row.get("clients")
        gate.check(
            int(row.get("tenants", 0)) >= 1000,
            f"service [{clients} clients] tenant population "
            f"{row.get('tenants')} >= 1000",
        )
        p99 = float(row.get("p99_fetch_s", 99.0))
        gate.check(
            p99 <= p99_max,
            f"service [{clients} clients] fetch p99 {p99:.4f}s <= "
            f"{p99_max}s",
        )
        hit = float(row.get("cache_hit_rate", 0.0))
        gate.check(
            hit >= hit_min,
            f"service [{clients} clients] cache hit rate {hit:.3f} >= "
            f"{hit_min}",
        )
        prewarm = float(row.get("prewarm_hit_fraction", 0.0))
        gate.check(
            prewarm >= prewarm_min and prewarm > 0.0,
            f"service [{clients} clients] pre-warm hit fraction "
            f"{prewarm:.4f} >= {prewarm_min} (and > 0)",
        )
    gate.check(
        bool(smoke.get("fingerprints_identical")),
        "service-served plans fingerprint-identical to synchronous "
        "planning",
    )


def check_chaos(gate: Gate, strict: bool) -> None:
    tracked = _load("BENCH_chaos.json") or {}
    floors = tracked.get("smoke") or {}
    smoke = _load("BENCH_chaos.smoke.json")
    if smoke is None:
        gate.check(not strict, "chaos smoke output missing")
        return

    avail_min = float(
        floors.get("availability_min", DEFAULT_CHAOS_AVAILABILITY_MIN)
    )
    recovery_max = float(
        floors.get("recovery_s_max", DEFAULT_CHAOS_RECOVERY_S_MAX)
    )
    violations_max = int(
        floors.get(
            "fingerprint_violations_max", DEFAULT_CHAOS_VIOLATIONS_MAX
        )
    )
    degraded_min = int(
        floors.get("degraded_served_min", DEFAULT_CHAOS_DEGRADED_MIN)
    )

    rows = {row["scenario"]: row for row in smoke.get("rows") or []}
    for scenario in ("single_shard_kill", "double_fault"):
        gate.check(
            scenario in rows,
            f"chaos smoke ran the {scenario} scenario",
        )
    for scenario, row in rows.items():
        avail = float(row.get("availability", 0.0))
        gate.check(
            avail >= avail_min,
            f"chaos [{scenario}] availability {avail:.4f} >= {avail_min}",
        )
        violations = int(row.get("fingerprint_violations", 99))
        gate.check(
            violations <= violations_max,
            f"chaos [{scenario}] served plans fingerprint-identical or "
            f"degraded-tagged ({violations} violations)",
        )
        recovery = row.get("recovery_s")
        gate.check(
            recovery is not None and float(recovery) <= recovery_max,
            f"chaos [{scenario}] re-replication recovered in {recovery}s "
            f"<= {recovery_max}s",
        )
        gate.check(
            bool(row.get("upgrades_drained"))
            and int(row.get("pending_upgrades", 1)) == 0,
            f"chaos [{scenario}] background plan upgrades drained",
        )

    kill = rows.get("single_shard_kill") or {}
    gate.check(
        int(kill.get("unreadable_during_fault", 99)) == 0,
        "chaos [single_shard_kill] every key readable from a replica "
        f"mid-fault ({kill.get('unreadable_during_fault')} unreadable "
        f"of {kill.get('probed_keys')})",
    )
    gate.check(
        int(kill.get("store_keys_lost", 99)) == 0,
        "chaos [single_shard_kill] no keys lost after healing "
        f"({kill.get('store_keys_lost')} lost)",
    )
    double = rows.get("double_fault") or {}
    gate.check(
        int(double.get("degraded_served", 0)) >= degraded_min,
        f"chaos [double_fault] degraded serving exercised "
        f"({double.get('degraded_served')} serves >= {degraded_min})",
    )


def check_scenarios(gate: Gate, strict: bool) -> None:
    tracked = _load("BENCH_scenarios.json") or {}
    smoke = _load("BENCH_scenarios.smoke.json")
    if smoke is None:
        gate.check(not strict, "scenario-matrix smoke output missing")
        return

    hidden_floor = float(
        tracked.get("smoke_hidden_floor", DEFAULT_SCENARIO_HIDDEN_FLOOR)
    )
    min_cells = int(tracked.get("min_cells", DEFAULT_SCENARIO_MIN_CELLS))
    rows = smoke.get("rows") or []
    gate.check(
        len(rows) >= min_cells,
        f"scenario matrix ran {len(rows)} cells >= {min_cells}",
    )
    config = smoke.get("config") or {}
    covered = {(row["mask_family"], row["packer"]) for row in rows}
    missing = [
        f"{family}/{packer}"
        for family in config.get("mask_families") or []
        for packer in config.get("packers") or []
        if (family, packer) not in covered
    ]
    gate.check(
        not missing,
        "scenario matrix covers every mask family x packer pair"
        + (f" (missing: {', '.join(missing)})" if missing else ""),
    )

    worst = min(
        (float(row["steady_hidden_fraction"]) for row in rows), default=0.0
    )
    gate.check(
        worst >= hidden_floor,
        f"scenario matrix worst steady hidden fraction {worst:.3f} >= "
        f"floor {hidden_floor:.3f}",
    )
    no_comm = [
        row["scenario"] for row in rows
        if int(row.get("comm_bytes_total", 0)) <= 0
    ]
    gate.check(
        not no_comm,
        "every scenario cell recorded communication volume"
        + (f" (empty: {', '.join(no_comm)})" if no_comm else ""),
    )
    unverified = [
        row["scenario"] for row in rows
        if row.get("stream") == "fixed"
        and not row.get("fingerprints_identical")
    ]
    gate.check(
        not unverified,
        "fixed-stream scenario plans fingerprint-identical to "
        "synchronous planning"
        + (f" (diverged: {', '.join(unverified)})" if unverified else ""),
    )
    event_rows = [row for row in rows if row.get("stream") == "events"]
    gate.check(
        bool(event_rows),
        f"scenario matrix ran {len(event_rows)} event cells",
    )
    stuck = [
        row["scenario"] for row in event_rows
        if int(row.get("replans", 0)) < 1
    ]
    gate.check(
        not stuck,
        "every event scenario cell re-planned"
        + (f" (no re-plan: {', '.join(stuck)})" if stuck else ""),
    )


def check_obs(gate: Gate, strict: bool) -> None:
    tracked = _load("BENCH_obs.json")
    if tracked is None:
        gate.check(not strict, "tracked BENCH_obs.json missing")
    else:
        # The acceptance ceilings hold on the tracked full run itself:
        # instrumentation must be ≈ free when disabled, ≤5% enabled.
        disabled_max = float(
            tracked.get("disabled_ratio_max", DEFAULT_OBS_DISABLED_RATIO_MAX)
        )
        enabled_max = float(
            tracked.get("enabled_ratio_max", DEFAULT_OBS_ENABLED_RATIO_MAX)
        )
        gate.check(
            float(tracked.get("disabled_ratio", 99.0)) <= disabled_max,
            f"tracked obs disabled-tracer ratio "
            f"{tracked.get('disabled_ratio')} <= {disabled_max}",
        )
        gate.check(
            float(tracked.get("enabled_ratio", 99.0)) <= enabled_max,
            f"tracked obs enabled-tracer ratio "
            f"{tracked.get('enabled_ratio')} <= {enabled_max}",
        )

    smoke = _load("BENCH_obs.smoke.json")
    if smoke is None:
        gate.check(not strict, "obs smoke output missing")
        return
    smoke_ceilings = (tracked or {}).get("smoke") or {}
    disabled_max = float(
        smoke_ceilings.get(
            "disabled_ratio_max", DEFAULT_OBS_SMOKE_DISABLED_RATIO_MAX
        )
    )
    enabled_max = float(
        smoke_ceilings.get(
            "enabled_ratio_max", DEFAULT_OBS_SMOKE_ENABLED_RATIO_MAX
        )
    )
    gate.check(
        float(smoke.get("disabled_ratio", 99.0)) <= disabled_max,
        f"obs smoke disabled-tracer ratio {smoke.get('disabled_ratio')} "
        f"<= {disabled_max}",
    )
    gate.check(
        float(smoke.get("enabled_ratio", 99.0)) <= enabled_max,
        f"obs smoke enabled-tracer ratio {smoke.get('enabled_ratio')} "
        f"<= {enabled_max}",
    )
    snapshot = smoke.get("metrics") or {}
    missing = [
        name for name in OBS_REQUIRED_METRICS if name not in snapshot
    ]
    gate.check(
        not missing,
        "obs required metrics present"
        + (f" (missing: {', '.join(missing)})" if missing else ""),
    )
    fetch = smoke.get("plan_fetch") or {}
    gate.check(
        all(
            int((fetch.get(path) or {}).get("count", 0)) >= 1
            for path in ("hit", "dispatch")
        ),
        "obs plan-fetch latency observed on both hit and dispatch paths",
    )

    trace = _load("TRACE_obs.smoke.json")
    if trace is None:
        gate.check(not strict, "obs smoke trace missing")
        return
    events = trace.get("traceEvents")
    gate.check(
        isinstance(events, list) and len(events) > 0,
        f"obs smoke trace holds {len(events or [])} events",
    )
    cats = {
        event.get("cat")
        for event in events or []
        if event.get("ph") == "X"
    }
    missing_cats = [
        cat for cat in OBS_REQUIRED_TRACE_CATS if cat not in cats
    ]
    gate.check(
        not missing_cats,
        "obs smoke trace carries planner/pipeline/transport/execution "
        "lanes"
        + (f" (missing: {', '.join(missing_cats)})" if missing_cats else ""),
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat a missing smoke output as a failure (CI runs the "
        "smokes first, so absence means a bench silently did not run)",
    )
    args = parser.parse_args(argv)

    gate = Gate()
    check_planner(gate, strict=args.strict)
    check_overlap(gate, strict=args.strict)
    check_transport(gate, strict=args.strict)
    check_service(gate, strict=args.strict)
    check_chaos(gate, strict=args.strict)
    check_scenarios(gate, strict=args.strict)
    check_obs(gate, strict=args.strict)

    if gate.failures:
        print(
            f"\n{len(gate.failures)}/{gate.checks} smoke floor checks "
            "FAILED:"
        )
        for failure in gate.failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall {gate.checks} smoke floor checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
