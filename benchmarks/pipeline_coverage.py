"""Line-coverage gate for ``repro.pipeline`` without external deps.

``run_tier1.sh`` wants ``pytest --cov=repro.pipeline
--cov-fail-under=85`` for the pipeline package, but the container image
may not ship ``pytest-cov``/``coverage``.  This tool is the fallback: a
``sys.settrace``-based line tracer scoped to ``src/repro/pipeline``
that runs the pipeline test modules under pytest and fails (exit 1) if
the executed fraction of traceable lines drops below the threshold.

The universe of traceable lines is derived from the compiled code
objects themselves (``co_lines`` over the module and every nested code
object), so it is exactly the set of lines that *can* emit trace
events — the same definition coverage.py uses.  Lines marked
``# pragma: no cover`` are excluded, matching the conventional escape
hatch.  Worker threads are traced too (``threading.settrace`` is
installed before any pool spawns); code running in worker *processes*
is out of scope, which only affects lines that exclusively run in
children — the pipeline package has none (``_timed_plan`` also runs on
the thread backend in-process).

Usage::

    PYTHONPATH=src python benchmarks/pipeline_coverage.py --fail-under 85
"""

from __future__ import annotations

import argparse
import os
import sys
import threading
from typing import Dict, Set

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
PACKAGE_DIR = os.path.join(REPO_ROOT, "src", "repro", "pipeline")

#: Test modules that exercise the pipeline package.
TEST_MODULES = [
    "tests/test_overlap_pipeline.py",
    "tests/test_streaming_pipeline.py",
    "tests/test_fault_injection.py",
    "tests/test_plan_cache.py",
    "tests/test_plan_transport.py",
    "tests/test_obs.py",
]


def _package_files() -> list:
    return sorted(
        os.path.join(PACKAGE_DIR, name)
        for name in os.listdir(PACKAGE_DIR)
        if name.endswith(".py")
    )


def _traceable_lines(path: str) -> Set[int]:
    """Line numbers that can emit trace events, minus pragma'd lines."""
    with open(path) as handle:
        source = handle.read()
    pragma_lines = {
        number
        for number, text in enumerate(source.splitlines(), start=1)
        if "pragma: no cover" in text
    }
    lines: Set[int] = set()
    stack = [compile(source, path, "exec")]
    while stack:
        code = stack.pop()
        for _start, _end, line in code.co_lines():
            if line is not None:
                lines.add(line)
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                stack.append(const)
    return lines - pragma_lines


class _Tracer:
    """Global trace hook recording line events under the package dir."""

    def __init__(self) -> None:
        self.executed: Dict[str, Set[int]] = {}
        self._lock = threading.Lock()

    def _local(self, frame, event, _arg):
        if event == "line":
            path = frame.f_code.co_filename
            with self._lock:
                self.executed.setdefault(path, set()).add(frame.f_lineno)
        return self._local

    def __call__(self, frame, event, arg):
        if event != "call":
            return None
        if not frame.f_code.co_filename.startswith(PACKAGE_DIR):
            return None
        return self._local(frame, event, arg)

    def install(self) -> None:
        threading.settrace(self)
        sys.settrace(self)

    def uninstall(self) -> None:
        sys.settrace(None)
        threading.settrace(None)  # type: ignore[arg-type]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fail-under", type=float, default=85.0,
                        help="minimum total line coverage percent")
    parser.add_argument("tests", nargs="*", default=None,
                        help="test files to run (default: pipeline suite)")
    args = parser.parse_args(argv)

    targets = [
        os.path.join(REPO_ROOT, rel) for rel in (args.tests or TEST_MODULES)
    ]
    universe = {path: _traceable_lines(path) for path in _package_files()}

    # Tracing makes the pipeline's own bookkeeping ~10x slower, which
    # pushes queue waits past the default stall threshold and flips
    # timing assertions.  Raise the threshold well above tracer noise
    # but far below any injected stall (tests use >= 12 ms plans).
    os.environ.setdefault("REPRO_STALL_EPS", "2e-3")

    tracer = _Tracer()
    tracer.install()
    try:
        import pytest

        exit_code = pytest.main(["-q", "-p", "no:cacheprovider", *targets])
    finally:
        tracer.uninstall()
    if exit_code != 0:
        print(f"pipeline tests failed (pytest exit {exit_code})")
        return int(exit_code) or 1

    total_lines = 0
    total_hit = 0
    print(f"\n{'file':<52} {'lines':>6} {'hit':>6} {'cover':>7}")
    for path, lines in universe.items():
        hit = len(tracer.executed.get(path, set()) & lines)
        total_lines += len(lines)
        total_hit += hit
        percent = 100.0 * hit / len(lines) if lines else 100.0
        rel = os.path.relpath(path, REPO_ROOT)
        print(f"{rel:<52} {len(lines):>6} {hit:>6} {percent:>6.1f}%")
    total = 100.0 * total_hit / total_lines if total_lines else 100.0
    print(f"{'TOTAL':<52} {total_lines:>6} {total_hit:>6} {total:>6.1f}%")

    if total < args.fail_under:
        print(
            f"FAIL: repro.pipeline line coverage {total:.1f}% is below "
            f"--fail-under {args.fail_under:.1f}%"
        )
        return 1
    print(f"ok: repro.pipeline line coverage {total:.1f}% "
          f">= {args.fail_under:.1f}%")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
