"""CI gate: the docs tree must track the code and benchmark surface.

Three checks, all cheap and dependency-free:

* every *tracked* benchmark report at the repo root (``BENCH_*.json``,
  excluding ``*.smoke.json`` scratch outputs) is mentioned somewhere
  under ``docs/`` — a new benchmark must document its schema and floors
  in ``docs/benchmarks.md``;
* every package under ``src/repro/`` (a directory with an
  ``__init__.py``) is mentioned under ``docs/`` — a new subsystem must
  appear in ``docs/architecture.md``'s subsystem map;
* every relative markdown link in ``docs/*.md`` and ``README.md``
  resolves to an existing file, so the docs tree cannot silently rot as
  files move (links that escape the repo root — e.g. GitHub badge
  URLs relative to the hosted repo — are skipped).

Usage::

    python benchmarks/check_docs.py
"""

from __future__ import annotations

import glob
import os
import re
import sys
from typing import List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS_DIR = os.path.join(REPO_ROOT, "docs")

#: ``[text](target)`` with an optional ``#fragment``; bare ``#`` anchors
#: and external schemes are filtered by the caller.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL = ("http://", "https://", "mailto:")


def _doc_files() -> List[str]:
    return sorted(glob.glob(os.path.join(DOCS_DIR, "**", "*.md"),
                            recursive=True))


def _docs_text() -> str:
    chunks = []
    for path in _doc_files():
        with open(path, encoding="utf-8") as handle:
            chunks.append(handle.read())
    return "\n".join(chunks)


def tracked_bench_files() -> List[str]:
    names = sorted(
        os.path.basename(path)
        for path in glob.glob(os.path.join(REPO_ROOT, "BENCH_*.json"))
    )
    return [name for name in names if not name.endswith(".smoke.json")]


def repro_packages() -> List[str]:
    root = os.path.join(REPO_ROOT, "src", "repro")
    return sorted(
        entry
        for entry in os.listdir(root)
        if os.path.isfile(os.path.join(root, entry, "__init__.py"))
    )


def missing_bench_mentions(text: str) -> List[str]:
    return [name for name in tracked_bench_files() if name not in text]


def missing_package_mentions(text: str) -> List[str]:
    """Packages with neither a ``repro.pkg`` nor ``repro/pkg`` mention."""
    return [
        pkg
        for pkg in repro_packages()
        if f"repro.{pkg}" not in text and f"repro/{pkg}" not in text
    ]


def broken_links() -> List[str]:
    """Relative links in docs/ and README.md that do not resolve."""
    broken: List[str] = []
    for path in _doc_files() + [os.path.join(REPO_ROOT, "README.md")]:
        if not os.path.isfile(path):
            continue
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
        base = os.path.dirname(path)
        for target in LINK_RE.findall(text):
            target = target.split("#", 1)[0]
            if not target or target.startswith(EXTERNAL):
                continue
            resolved = os.path.normpath(os.path.join(base, target))
            if not resolved.startswith(REPO_ROOT + os.sep):
                # Escapes the checkout (e.g. a badge URL relative to
                # the hosted repo page) — not ours to verify.
                continue
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, REPO_ROOT)
                broken.append(f"{rel}: link target {target!r} not found")
    return broken


def main(argv: Optional[Sequence[str]] = None) -> int:
    failures: List[str] = []
    if not os.path.isdir(DOCS_DIR) or not _doc_files():
        failures.append("docs/ tree is missing (or holds no .md files)")
        text = ""
    else:
        text = _docs_text()
        for name in missing_bench_mentions(text):
            failures.append(
                f"tracked benchmark {name} is not documented anywhere "
                f"under docs/ (document its schema, floors, and "
                f"regeneration command in docs/benchmarks.md)"
            )
        for pkg in missing_package_mentions(text):
            failures.append(
                f"package src/repro/{pkg} is not documented anywhere "
                f"under docs/ (add it to docs/architecture.md)"
            )
    failures.extend(broken_links())

    if failures:
        print(f"{len(failures)} docs freshness check(s) FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"docs ok: {len(tracked_bench_files())} tracked benchmark files "
        f"and {len(repro_packages())} repro packages documented, all "
        f"relative links resolve"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
