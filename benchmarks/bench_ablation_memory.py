"""Ablation: memory balance across systems (paper §2.3 / §4.2).

The paper's core balancing argument: memory grows linearly with a
device's tokens while attention computation grows quadratically, so
pure DP (Fig. 5b) can balance memory yet wreck compute, and any
placement must balance both.  This ablation measures, on a skewed
batch, the buffer high-water marks and compute loads that each system's
placement actually produces.
"""

import os

import numpy as np
from conftest import run_once

from repro.baselines import FlexSPPlanner, RingAttentionPlanner
from repro.bench import BenchScale, PAPER_MASKS, Table, make_batches
from repro.blocks import generate_blocks
from repro.core import DCPPlanner
from repro.sim import plan_memory, simulate_plan


def _systems(scale):
    return {
        "rfa_zigzag": RingAttentionPlanner(zigzag=True),
        "flexsp": FlexSPPlanner(),
        "dcp": DCPPlanner(
            scale.cluster, scale.attention, scale.dcp_config()
        ),
    }


def _imbalance(values) -> float:
    values = np.asarray(values, dtype=np.float64)
    if values.mean() == 0:
        return 0.0
    return float(values.max() / values.mean() - 1.0)


def test_ablation_memory_balance(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=2)

    def run():
        table = Table(
            "Ablation: memory and compute balance per system",
            ["system", "mem_max_mb", "mem_imbal", "compute_imbal"],
        )
        batches = make_batches(
            "longdatacollections", scale, PAPER_MASKS["causal"]()
        )
        for name, planner in _systems(scale).items():
            mem_max, mem_imb, comp_imb = [], [], []
            for batch in batches:
                block_set = generate_blocks(
                    batch, scale.attention, scale.block_size
                )
                plan = planner.plan(block_set, scale.cluster)
                report = plan_memory(plan)
                mem_max.append(report.max_bytes)
                mem_imb.append(report.imbalance())
                timing = simulate_plan(plan)
                comp_imb.append(
                    _imbalance(
                        [d.compute_time for d in timing.devices.values()]
                    )
                )
            table.add(
                name,
                float(np.mean(mem_max)) / 1e6,
                float(np.mean(mem_imb)),
                float(np.mean(comp_imb)),
            )
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_memory.md"))
    table.show()

    rows = {name: (mx, mi, ci) for name, mx, mi, ci in table.rows}
    # DCP balances both dimensions: no device holds wildly more buffer
    # memory than the mean, and compute stays within the paper's
    # intra-node tolerance regime.
    assert rows["dcp"][1] < 1.0, "DCP memory imbalance should stay bounded"
    assert rows["dcp"][2] < 1.0, "DCP compute imbalance should stay bounded"
    # DCP's peak memory does not exceed the static ring's by much: the
    # ring's peak includes two in-flight KV chunks, DCP's includes its
    # fetch buffers.
    assert rows["dcp"][0] <= rows["rfa_zigzag"][0] * 2.0
