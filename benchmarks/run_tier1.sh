#!/usr/bin/env bash
# Tier-1 verify + perf smokes (planner hot path, planning overlap,
# streaming overlap) + pipeline coverage gate.
#
#   ./benchmarks/run_tier1.sh            # tests + smoke benchmarks
#   ./benchmarks/run_tier1.sh --full     # tests + full benchmark sweeps
#                                        # (rewrites BENCH_planner.json
#                                        #  and BENCH_overlap.json)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"
export PYTHONPATH="$REPO_ROOT/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1: pytest -x -q (+ pipeline coverage gate >= 85%) =="
if python -c "import pytest_cov" 2>/dev/null; then
    # One pass: the full suite doubles as the coverage run.
    python -m pytest -x -q --cov=repro.pipeline --cov-fail-under=85
else
    python -m pytest -x -q
    # pytest-cov is absent in the container image: same gate through
    # the dep-free settrace tracer (needs its own traced run).
    echo "== pipeline coverage gate (settrace fallback) =="
    python benchmarks/pipeline_coverage.py --fail-under 85
fi

echo "== planner hot-path smoke =="
if [[ "${1:-}" == "--full" ]]; then
    python benchmarks/bench_planner_hotpath.py
else
    # The smoke run writes to a scratch file so it never clobbers the
    # tracked full-sweep numbers in BENCH_planner.json.
    python benchmarks/bench_planner_hotpath.py --smoke \
        --output "$REPO_ROOT/BENCH_planner.smoke.json"
fi

echo "== overlap pipeline smoke =="
if [[ "${1:-}" == "--full" ]]; then
    python benchmarks/bench_overlap_pipeline.py
else
    # Gates: exits non-zero if the measured steady-state planning-hidden
    # fraction regresses below the smoke_floor in BENCH_overlap.json.
    python benchmarks/bench_overlap_pipeline.py --smoke \
        --output "$REPO_ROOT/BENCH_overlap.smoke.json"
fi

echo "== streaming overlap smoke =="
if [[ "${1:-}" == "--full" ]]; then
    # Rewrites the "streaming" section of BENCH_overlap.json.
    python benchmarks/bench_overlap_pipeline.py --streaming
else
    # Gates the online mode on the same fixed-stream hidden-fraction
    # floor, plus measured-replan, delta-replan-cost and
    # fingerprint-identity checks.
    python benchmarks/bench_overlap_pipeline.py --streaming --smoke \
        --output "$REPO_ROOT/BENCH_overlap.streaming.smoke.json"
fi

echo "== plan transport smoke =="
if [[ "${1:-}" == "--full" ]]; then
    # Rewrites the "transport" section of BENCH_overlap.json.
    python benchmarks/bench_overlap_pipeline.py --transport
else
    # Gates cross-transport plan identity, real shared-memory use, and
    # the (encode + move + decode) / plan-time overhead ceiling.
    python benchmarks/bench_overlap_pipeline.py --transport --smoke \
        --output "$REPO_ROOT/BENCH_overlap.transport.smoke.json"
fi

echo "== plan service smoke =="
if [[ "${1:-}" == "--full" ]]; then
    # Rewrites BENCH_service.json (client-count sweep + CI floors).
    python benchmarks/bench_plan_service.py
else
    # Multi-tenant Zipf stream (>= 1000 tenants): p99 fetch latency,
    # cache hit rate and pre-warm hit fraction are gated against the
    # floors in BENCH_service.json by check_bench_floors.py below.
    python benchmarks/bench_plan_service.py --smoke \
        --output "$REPO_ROOT/BENCH_service.smoke.json"
fi

echo "== chaos (fault injection) smoke =="
if [[ "${1:-}" == "--full" ]]; then
    # Rewrites BENCH_chaos.json (full-length fault schedules + floors).
    python benchmarks/bench_chaos.py
else
    # Compressed fault schedules against the replicated plan service:
    # availability, mid-fault readability, re-replication recovery,
    # degraded-serve integrity — gated against the floors in
    # BENCH_chaos.json by check_bench_floors.py below.
    python benchmarks/bench_chaos.py --smoke \
        --output "$REPO_ROOT/BENCH_chaos.smoke.json"
fi

echo "== scenario matrix smoke =="
if [[ "${1:-}" == "--full" ]]; then
    # Rewrites BENCH_scenarios.json (full 30-cell mask x packer x
    # stream grid + floors).
    python benchmarks/bench_scenarios.py
else
    # Reduced grid (>= 12 cells): every mask family x streaming packer
    # fixed cell plus event cells, gated on the per-cell hidden-fraction
    # floor, fingerprint identity, and re-plan observation recorded in
    # BENCH_scenarios.json.
    python benchmarks/bench_scenarios.py --smoke \
        --output "$REPO_ROOT/BENCH_scenarios.smoke.json"
fi

echo "== observability smoke =="
if [[ "${1:-}" == "--full" ]]; then
    # Rewrites BENCH_obs.json and the Fig. 18 sweep-point TRACE_obs.json.
    python benchmarks/bench_overlap_pipeline.py --obs
else
    # Gates tracer/metrics overhead (disabled ≈ free, enabled bounded)
    # against the ceilings in BENCH_obs.json, plus required-metric
    # presence and merged-trace validity.
    python benchmarks/bench_overlap_pipeline.py --obs --smoke \
        --output "$REPO_ROOT/BENCH_obs.smoke.json"
fi

if [[ "${1:-}" != "--full" ]]; then
    echo "== smoke floors vs tracked BENCH_*.json =="
    # The aggregate regression gate CI runs on every PR: every smoke
    # metric must clear the floor recorded in the tracked full-sweep
    # files (strict: a missing smoke output is itself a failure).
    python benchmarks/check_bench_floors.py --strict
fi

echo "== docs freshness =="
# Every tracked BENCH_*.json and every src/repro/* package must be
# documented under docs/, and every relative link in docs/ and
# README.md must resolve.
python benchmarks/check_docs.py
