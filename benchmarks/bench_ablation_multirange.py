"""Ablation: masks beyond the 2-range executor limit (§5 extension).

The paper's executor caps masks at two attendable ranges per token and
defers richer patterns to FlexAttention/FlashMask.  This reproduction
implements the general representation, so Fig. 19's claim —
communication tracks mask sparsity — can be re-tested on mask families
the paper could not run: LongNet-style dilated block attention and
Longformer-style global tokens.
"""

import os

import numpy as np
from conftest import run_once

from repro.bench import BenchScale, Table, make_batches
from repro.blocks import generate_blocks
from repro.core import DCPConfig, DCPPlanner
from repro.masks import CausalMask, DilatedBlockMask, GlobalTokenMask
from repro.sim import simulate_plan

MASKS = {
    "causal": lambda: CausalMask(),
    "dilated_w4096": lambda: DilatedBlockMask(
        block=512, stride=4, window=4096
    ),
    "dilated_w2048": lambda: DilatedBlockMask(
        block=512, stride=8, window=2048
    ),
    "global_e2048": lambda: GlobalTokenMask(every=2048, window=4096),
    "global_e4096": lambda: GlobalTokenMask(every=4096, window=2048),
}


def test_ablation_multirange_masks(benchmark, results_dir):
    scale = BenchScale.sweep(num_batches=2)

    def run():
        table = Table(
            "Ablation: multi-range masks (communication tracks sparsity)",
            ["mask", "max_ranges", "sparsity", "fw_ms", "comm_mb"],
        )
        planner = DCPPlanner(
            scale.cluster, scale.attention,
            DCPConfig(block_size=scale.block_size, restarts=1),
        )
        probe_len = scale.max_seqlen // 2
        for name, factory in MASKS.items():
            mask = factory()
            batches = make_batches(
                "longdatacollections", scale, mask, length_scale=2.0
            )
            times, volumes = [], []
            for batch in batches:
                block_set = generate_blocks(
                    batch, scale.attention, scale.block_size
                )
                plan = planner.plan(block_set, scale.cluster)
                times.append(simulate_plan(plan).iteration_time)
                volumes.append(plan.total_comm_bytes())
            max_ranges = (
                mask.max_ranges_per_row(probe_len)
                if hasattr(mask, "max_ranges_per_row")
                else 2
            )
            table.add(
                name,
                max_ranges,
                mask.sparsity_vs_causal(probe_len),
                1e3 * float(np.mean(times)),
                float(np.mean(volumes)) / 1e6,
            )
        return table

    table = run_once(benchmark, run)
    table.save(os.path.join(results_dir, "ablation_multirange.md"))
    table.show()

    rows = {name: (s, fw, mb) for name, _, s, fw, mb in table.rows}
    ranges = dict(zip(table.column("mask"), table.column("max_ranges")))
    # These mask families genuinely exceed the paper's 2-range limit.
    assert any(r > 2 for r in ranges.values())
    # Fig. 19 extended: sparser masks communicate less than causal.
    for name, (sparsity, _, comm) in rows.items():
        if name != "causal":
            assert sparsity < 1.0
            assert comm <= rows["causal"][2] * 1.05
    # And communication correlates positively with sparsity.
    names = [n for n in rows if n != "causal"]
    sparsities = np.array([rows[n][0] for n in names])
    comms = np.array([rows[n][2] for n in names])
    if comms.std() > 0 and sparsities.std() > 0:
        corr = float(np.corrcoef(sparsities, comms)[0, 1])
        assert corr > -0.5, "communication should not anti-correlate"
