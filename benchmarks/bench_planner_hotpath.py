"""Planner hot-path microbenchmark.

Times the three planner stages — block generation, placement
(partitioning), and scheduling — separately across batch sizes and
block sizes, and writes ``BENCH_planner.json`` at the repo root so the
perf trajectory is tracked across PRs.

The headline configuration is the Fig. 18 sweep point the tentpole
speedup target is measured on: 512-token blocks, causal mask, the
2x4-device sweep cluster.

Usage::

    PYTHONPATH=src python benchmarks/bench_planner_hotpath.py           # full
    PYTHONPATH=src python benchmarks/bench_planner_hotpath.py --smoke   # quick

Runs standalone (no pytest needed); also exposed as a pytest test so it
rides along with the benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import time
from typing import Dict, List, Optional, Sequence

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_planner.json")

DEFAULT_TOKEN_BUDGETS = (8192, 16384, 32768)
DEFAULT_BLOCK_SIZES = (512, 1024)
SMOKE_TOKEN_BUDGETS = (2048,)
SMOKE_BLOCK_SIZES = (256,)

#: Wall-clock budget for the smoke configuration's total planning time,
#: recorded in the tracked BENCH_planner.json and enforced by
#: benchmarks/check_bench_floors.py.  The smoke point measures ~0.13 s
#: locally; the budget leaves ~5x headroom for shared CI runners while
#: still catching an order-of-magnitude hot-path regression.
SMOKE_TOTAL_S_MAX = 0.75


def _git_revision() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
        return out.stdout.strip() or None
    except (OSError, subprocess.SubprocessError):
        return None


def run_hotpath_bench(
    token_budgets: Sequence[int] = DEFAULT_TOKEN_BUDGETS,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    mask_name: str = "causal",
    repeats: int = 2,
) -> Dict:
    """Time planner stages for every (token budget, block size) point."""
    from repro.bench.harness import BenchScale, PAPER_MASKS, make_batches
    from repro.core import DCPPlanner

    rows: List[Dict] = []
    for token_budget in token_budgets:
        scale = BenchScale.sweep(
            num_batches=1,
            token_budget=int(token_budget),
            max_seqlen=int(token_budget),
        )
        batches = make_batches("longalign", scale, PAPER_MASKS[mask_name]())
        for block_size in block_sizes:
            planner = DCPPlanner(
                scale.cluster,
                scale.attention,
                scale.dcp_config(block_size=int(block_size)),
            )
            best = None
            for _ in range(max(repeats, 1)):
                start = time.perf_counter()
                for batch in batches:
                    planner.plan_batch(batch)
                elapsed = time.perf_counter() - start
                if best is None or elapsed < best[0]:
                    best = (elapsed, planner.last_stats)
            elapsed, stats = best
            comm = planner.last_placement.comm_report().total_bytes
            rows.append(
                {
                    "token_budget": int(token_budget),
                    "block_size": int(block_size),
                    "mask": mask_name,
                    "total_s": round(elapsed, 6),
                    "block_generation_s": round(stats.block_generation, 6),
                    "placement_s": round(stats.placement, 6),
                    "scheduling_s": round(stats.scheduling, 6),
                    "num_vertices": stats.num_vertices,
                    "num_edges": stats.num_edges,
                    "refine_moves": stats.refine_moves,
                    "gain_evals": stats.gain_evals,
                    "comm_bytes": int(comm),
                }
            )
            print(
                f"tokens={token_budget:>6} block={block_size:>5} "
                f"total={elapsed:.3f}s gen={stats.block_generation:.3f}s "
                f"place={stats.placement:.3f}s sched={stats.scheduling:.3f}s "
                f"moves={stats.refine_moves} comm={comm / 1e6:.1f}MB"
            )
    return {
        "benchmark": "planner_hotpath",
        "mask": mask_name,
        "git_revision": _git_revision(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "smoke": {"total_s_max": SMOKE_TOTAL_S_MAX},
        "rows": rows,
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny configuration for CI smoke runs",
    )
    parser.add_argument(
        "--mask", default="causal", help="paper mask name (default: causal)"
    )
    parser.add_argument(
        "--output",
        default=OUTPUT_PATH,
        help="where to write the JSON report (default: repo root)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="timing repeats per point"
    )
    args = parser.parse_args(argv)

    from repro.bench.harness import PAPER_MASKS

    if args.mask not in PAPER_MASKS:
        parser.error(
            f"unknown mask {args.mask!r}; choose from "
            f"{', '.join(sorted(PAPER_MASKS))}"
        )

    if args.smoke:
        report = run_hotpath_bench(
            SMOKE_TOKEN_BUDGETS, SMOKE_BLOCK_SIZES, args.mask, repeats=1
        )
    else:
        report = run_hotpath_bench(mask_name=args.mask, repeats=args.repeats)

    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


def test_planner_hotpath_smoke():
    """Pytest entry point: smoke-size run, sanity-check the stages."""
    report = run_hotpath_bench(
        SMOKE_TOKEN_BUDGETS, SMOKE_BLOCK_SIZES, repeats=1
    )
    assert report["rows"], "benchmark produced no rows"
    for row in report["rows"]:
        assert row["total_s"] > 0
        assert row["num_vertices"] > 0


if __name__ == "__main__":
    raise SystemExit(main())
